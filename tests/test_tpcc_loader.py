"""TPC-C population: cardinalities, indexes, rid helpers, queues."""

import pytest

from repro.core.config import CachePolicy
from repro.core.dbms import SimulatedDBMS
from repro.errors import ConfigError
from repro.tpcc.loader import estimate_db_pages, load_tpcc
from repro.tpcc.scale import TINY, ScaleProfile
from tests.conftest import tiny_config


@pytest.fixture(scope="module")
def loaded():
    dbms = SimulatedDBMS(
        tiny_config(CachePolicy.FACE, disk_capacity_pages=8192, cache_pages=64)
    )
    return load_tpcc(dbms, TINY, seed=5)


def test_scale_profile_derivations():
    assert TINY.districts == 2
    assert TINY.customers == 60
    assert TINY.stock_rows == 200
    assert TINY.initial_orders == 60
    assert TINY.initial_new_orders == 18


def test_scale_profile_validation():
    with pytest.raises(ConfigError):
        ScaleProfile(warehouses=0)
    with pytest.raises(ConfigError):
        ScaleProfile(new_order_fraction=2.0)


def test_all_nine_tables_created(loaded):
    assert set(loaded.dbms.tables) == {
        "warehouse", "district", "customer", "history", "new_order",
        "orders", "order_line", "item", "stock",
    }


def test_row_counts_match_scale(loaded):
    tables = loaded.dbms.tables
    assert tables["warehouse"].info.row_count == 1
    assert tables["district"].info.row_count == 2
    assert tables["customer"].info.row_count == 60
    assert tables["item"].info.row_count == 200
    assert tables["stock"].info.row_count == 200
    assert tables["orders"].info.row_count == 60
    assert tables["new_order"].info.row_count == 18
    assert tables["history"].info.row_count == 60
    # 5..15 lines per order, 60 orders
    assert 5 * 60 <= tables["order_line"].info.row_count <= 15 * 60


def test_rid_helpers_agree_with_indexes(loaded):
    dbms = loaded.dbms
    assert dbms.index_lookup("warehouse_pk", (1,)) == loaded.warehouse_rid(1)
    assert dbms.index_lookup("district_pk", (1, 2)) == loaded.district_rid(1, 2)
    assert dbms.index_lookup("customer_pk", (1, 2, 30)) == loaded.customer_rid(1, 2, 30)
    assert dbms.index_lookup("item_pk", (200,)) == loaded.item_rid(200)
    assert dbms.index_lookup("stock_pk", (1, 17)) == loaded.stock_rid(1, 17)


def test_loaded_rows_have_correct_keys(loaded):
    dbms = loaded.dbms
    row = dbms.fetch_row("customer", loaded.customer_rid(1, 2, 7))
    assert (row[2], row[1], row[0]) == (1, 2, 7)
    stock = dbms.fetch_row("stock", loaded.stock_rid(1, 99))
    assert (stock[1], stock[0]) == (1, 99)


def test_district_next_o_id_points_past_loaded_orders(loaded):
    row = loaded.dbms.fetch_row("district", loaded.district_rid(1, 1))
    assert row[10] == TINY.orders_per_district + 1


def test_undelivered_queues_match_new_order_rows(loaded):
    total = sum(len(q) for q in loaded.undelivered.values())
    assert total == TINY.initial_new_orders
    for (w, d), queue in loaded.undelivered.items():
        assert list(queue) == sorted(queue)  # oldest first
        for o_id in queue:
            assert loaded.dbms.index_lookup("new_order_pk", (w, d, o_id)) is not None


def test_order_index_covers_every_order(loaded):
    for o_id in (1, 15, 30):  # TINY loads 30 orders per district
        rid = loaded.dbms.index_lookup("order_pk", (1, 1, o_id))
        assert rid is not None
        order = loaded.dbms.fetch_row("orders", rid)
        assert order[0] == o_id


def test_order_lines_reachable_via_first_rownum(loaded):
    dbms = loaded.dbms
    rid = dbms.index_lookup("order_pk", (1, 1, 5))
    order = dbms.fetch_row("orders", rid)
    ol_cnt, ol_first = order[6], order[8]
    heap = dbms.tables["order_line"]
    for offset in range(ol_cnt):
        line = dbms.fetch_row("order_line", heap.rid_for_rownum(ol_first + offset))
        assert line[0] == 5  # ol_o_id
        assert line[3] == offset + 1  # ol_number


def test_customer_last_index_returns_valid_customer(loaded):
    rid = loaded.dbms.index_lookup("customer_last", (1, 1, 0))
    assert rid is not None
    row = loaded.dbms.fetch_row("customer", rid)
    assert row[5].startswith("BAR")  # lastname index 0


def test_estimate_matches_actual_allocation(loaded):
    assert estimate_db_pages(TINY) == loaded.dbms.db_pages


def test_deterministic_load():
    a = SimulatedDBMS(tiny_config(disk_capacity_pages=8192))
    b = SimulatedDBMS(tiny_config(disk_capacity_pages=8192))
    load_tpcc(a, TINY, seed=5)
    load_tpcc(b, TINY, seed=5)
    for pid in range(a.db_pages):
        ia, ib = a.disk.peek(pid), b.disk.peek(pid)
        if ia is None:
            assert ib is None
        else:
            assert ia.slots == ib.slots
