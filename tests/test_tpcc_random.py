"""TPC-C input generation: NURand skew, ranges, determinism."""

import pytest

from repro.errors import WorkloadError
from repro.tpcc.random_gen import TpccRandom, _a_for_range, lastname_for_index


@pytest.fixture
def rnd() -> TpccRandom:
    return TpccRandom(seed=1, customers_per_district=300, items=10_000)


def test_a_for_range_power_of_two_minus_one():
    for span, ratio in ((3000, 1023 / 3000), (100_000, 8191 / 100_000)):
        a = _a_for_range(span, ratio)
        assert (a + 1) & a == 0  # 2^k - 1
        assert a >= int(span * ratio)


def test_standard_ranges_reproduce_spec_constants():
    assert _a_for_range(3000, 1023 / 3000) == 1023
    assert _a_for_range(100_000, 8191 / 100_000) == 8191
    assert _a_for_range(1000, 255 / 1000) == 255


def test_customer_ids_within_range(rnd):
    ids = [rnd.customer_id() for _ in range(2000)]
    assert min(ids) >= 1
    assert max(ids) <= 300


def test_item_ids_within_range(rnd):
    ids = [rnd.item_id() for _ in range(2000)]
    assert min(ids) >= 1
    assert max(ids) <= 10_000


def test_nurand_is_skewed_not_uniform(rnd):
    """NURand concentrates mass: the most popular decile must receive far
    more than 10% of draws."""
    from collections import Counter

    draws = Counter(rnd.item_id() for _ in range(20_000))
    top_decile = sum(c for _, c in draws.most_common(len(draws) // 10))
    assert top_decile / 20_000 > 0.2


def test_determinism_across_instances():
    a = TpccRandom(seed=9, customers_per_district=300, items=1000)
    b = TpccRandom(seed=9, customers_per_district=300, items=1000)
    assert [a.item_id() for _ in range(50)] == [b.item_id() for _ in range(50)]


def test_order_line_count_range(rnd):
    counts = {rnd.order_line_count() for _ in range(500)}
    assert counts <= set(range(5, 16))
    assert {5, 15} & counts  # extremes reachable


def test_rollback_rate_near_one_percent(rnd):
    rolls = sum(rnd.is_rollback() for _ in range(20_000))
    assert 100 < rolls < 320


def test_payment_by_lastname_near_sixty_percent(rnd):
    byname = sum(rnd.payment_by_lastname() for _ in range(10_000))
    assert 5500 < byname < 6500


def test_payment_remote_near_fifteen_percent(rnd):
    remote = sum(rnd.payment_remote() for _ in range(10_000))
    assert 1200 < remote < 1800


def test_uniform_bounds_and_errors(rnd):
    assert 3 <= rnd.uniform(3, 7) <= 7
    assert rnd.uniform(4, 4) == 4
    with pytest.raises(WorkloadError):
        rnd.uniform(5, 4)


def test_threshold_range(rnd):
    assert all(10 <= rnd.threshold() <= 20 for _ in range(100))


def test_lastname_composition():
    assert lastname_for_index(0) == "BARBARBAR"
    assert lastname_for_index(371) == "PRICALLYOUGHT"  # syllables 3-7-1
    assert lastname_for_index(999) == "EINGEINGEING"


def test_lastname_index_range(rnd):
    span = max(1, 300 // 3)
    indexes = [rnd.lastname_index() for _ in range(1000)]
    assert min(indexes) >= 0
    assert max(indexes) < span
