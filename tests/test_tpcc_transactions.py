"""Semantic effects of the five TPC-C transactions."""

import pytest

from repro.core.config import CachePolicy
from repro.core.dbms import SimulatedDBMS
from repro.tpcc.loader import load_tpcc
from repro.tpcc.random_gen import TpccRandom
from repro.tpcc.scale import TINY
from repro.tpcc.transactions import TpccTransactions
from tests.conftest import tiny_config


@pytest.fixture
def txs() -> TpccTransactions:
    dbms = SimulatedDBMS(
        tiny_config(CachePolicy.FACE_GSC, disk_capacity_pages=8192, cache_pages=64)
    )
    database = load_tpcc(dbms, TINY, seed=5)
    rnd = TpccRandom(seed=11, customers_per_district=TINY.customers_per_district,
                     items=TINY.items)
    return TpccTransactions(database, rnd)


def district_row(txs, w=1, d=1):
    return txs.dbms.fetch_row("district", txs.database.district_rid(w, d))


class TestNewOrder:
    def test_increments_next_o_id_and_creates_rows(self, txs):
        before = {d: district_row(txs, 1, d)[10] for d in (1, 2)}
        orders_before = txs.dbms.tables["orders"].info.row_count
        result = txs.new_order()
        after = {d: district_row(txs, 1, d)[10] for d in (1, 2)}
        incremented = [d for d in (1, 2) if after[d] == before[d] + 1]
        if result.committed:
            assert len(incremented) == 1
            assert txs.dbms.tables["orders"].info.row_count == orders_before + 1
        else:
            assert len(incremented) == 0

    def test_stock_decremented_or_replenished(self, txs):
        # Run several orders; stock rows must change and stay in [10, 200].
        for _ in range(10):
            txs.new_order()
        quantities = [
            txs.dbms.fetch_row("stock", txs.database.stock_rid(1, i))[2]
            for i in range(1, TINY.items + 1)
        ]
        assert all(q >= 10 for q in quantities)

    def test_order_registered_in_indexes_and_queue(self, txs):
        queues_before = {
            key: len(q) for key, q in txs.database.undelivered.items()
        }
        result = txs.new_order()
        if not result.committed:
            return
        grown = [
            key
            for key, q in txs.database.undelivered.items()
            if len(q) > queues_before[key]
        ]
        assert len(grown) == 1
        (w, d) = grown[0]
        o_id = txs.database.undelivered[(w, d)][-1]
        assert txs.dbms.index_lookup("order_pk", (w, d, o_id)) is not None
        assert txs.dbms.index_lookup("new_order_pk", (w, d, o_id)) is not None

    def test_rollbacks_happen_and_leave_no_orders(self, txs):
        committed = aborted = 0
        for _ in range(300):
            if txs.new_order().committed:
                committed += 1
            else:
                aborted += 1
        assert aborted >= 1  # ~1% of 300
        assert committed > 250
        assert txs.dbms.aborted == aborted


class TestPayment:
    def test_updates_ytd_chain_and_history(self, txs):
        w_before = txs.dbms.fetch_row("warehouse", txs.database.warehouse_rid(1))[8]
        hist_before = txs.dbms.tables["history"].info.row_count
        result = txs.payment()
        assert result.committed
        w_after = txs.dbms.fetch_row("warehouse", txs.database.warehouse_rid(1))[8]
        assert w_after > w_before
        assert txs.dbms.tables["history"].info.row_count == hist_before + 1

    def test_customer_balance_decreases(self, txs):
        balances_before = [
            txs.dbms.fetch_row("customer", txs.database.customer_rid(1, d, c))[16]
            for d in (1, 2)
            for c in range(1, TINY.customers_per_district + 1)
        ]
        for _ in range(10):
            txs.payment()
        balances_after = [
            txs.dbms.fetch_row("customer", txs.database.customer_rid(1, d, c))[16]
            for d in (1, 2)
            for c in range(1, TINY.customers_per_district + 1)
        ]
        assert sum(balances_after) < sum(balances_before)


class TestOrderStatus:
    def test_read_only(self, txs):
        import copy

        row_counts = {t: h.info.row_count for t, h in txs.dbms.tables.items()}
        result = txs.order_status()
        assert result.committed
        assert {t: h.info.row_count for t, h in txs.dbms.tables.items()} == row_counts


class TestDelivery:
    def test_consumes_oldest_new_orders(self, txs):
        before = {key: list(q) for key, q in txs.database.undelivered.items()}
        result = txs.delivery()
        assert result.committed
        for key, old in before.items():
            queue = txs.database.undelivered[key]
            if old:
                assert len(queue) == len(old) - 1
                assert list(queue) == old[1:]
                # NEW-ORDER row gone from the index:
                w, d = key
                assert txs.dbms.index_lookup("new_order_pk", (w, d, old[0])) is None

    def test_sets_carrier_and_delivery_dates(self, txs):
        (w, d) = (1, 1)
        o_id = txs.database.undelivered[(w, d)][0]
        txs.delivery()
        rid = txs.dbms.index_lookup("order_pk", (w, d, o_id))
        order = txs.dbms.fetch_row("orders", rid)
        assert order[5] >= 1  # carrier assigned
        heap = txs.dbms.tables["order_line"]
        line = txs.dbms.fetch_row("order_line", heap.rid_for_rownum(order[8]))
        assert line[6] == 1  # delivery date set

    def test_customer_balance_credited(self, txs):
        (w, d) = (1, 1)
        o_id = txs.database.undelivered[(w, d)][0]
        rid = txs.dbms.index_lookup("order_pk", (w, d, o_id))
        c_id = txs.dbms.fetch_row("orders", rid)[3]
        before = txs.dbms.fetch_row(
            "customer", txs.database.customer_rid(w, d, c_id)
        )[16]
        txs.delivery()
        after = txs.dbms.fetch_row(
            "customer", txs.database.customer_rid(w, d, c_id)
        )[16]
        assert after >= before

    def test_empty_queues_commit_harmlessly(self, txs):
        for queue in txs.database.undelivered.values():
            while queue:
                txs.delivery()
        assert txs.delivery().committed


class TestStockLevel:
    def test_read_only_and_commits(self, txs):
        row_counts = {t: h.info.row_count for t, h in txs.dbms.tables.items()}
        assert txs.stock_level().committed
        assert {t: h.info.row_count for t, h in txs.dbms.tables.items()} == row_counts

    def test_touches_stock_pages(self, txs):
        accesses_before = txs.dbms.buffer.stats.accesses
        txs.stock_level()
        assert txs.dbms.buffer.stats.accesses > accesses_before + 10
