"""Scenario layer (repro.sim.scenario): the one protocol both engines drive.

Pins the refactor's equivalence claims:

* ``SteadyStateScenario.execute`` is bit-identical to the historical
  :func:`~repro.sim.runner.run_steady_state` for every cache policy;
* ``CrashRecoveryScenario.execute`` on a fresh runner is what a crash
  :class:`~repro.sim.parallel.CellSpec` produces through ``run_cell``;
* scenarios validate their knobs, and both scenarios and crash specs
  pickle (the parallel engine fans crash cells out to worker processes).
"""

from __future__ import annotations

import dataclasses
import pickle

import pytest

from repro.core.config import CachePolicy, scaled_reference_config
from repro.errors import ConfigError
from repro.sim.experiment import ExperimentConfig
from repro.sim.parallel import CellSpec, run_cell, run_cells
from repro.sim.runner import ExperimentRunner, run_steady_state
from repro.sim.scenario import (
    CrashRecoveryScenario,
    CrashRun,
    SteadyStateScenario,
)
from repro.tpcc.loader import estimate_db_pages
from repro.tpcc.scale import TINY

DB_PAGES = estimate_db_pages(TINY)

#: Short but non-trivial: fills the small flash cache and forces WAL syncs.
MEASURE, WARM_MIN, WARM_MAX = 120, 40, 600

#: A crash schedule that fires quickly at TINY scale (checkpoints every
#: 0.2 simulated seconds; the kill lands mid-interval well before the
#: transaction bound).
FAST_CRASH = dict(checkpoint_interval=0.2, max_transactions=8_000,
                  warmup_min=WARM_MIN, warmup_max=WARM_MAX)


def _config(policy: CachePolicy):
    return scaled_reference_config(DB_PAGES, cache_fraction=0.08, policy=policy)


# -- steady state: the scenario IS run_steady_state ---------------------------


@pytest.mark.parametrize("policy", list(CachePolicy), ids=lambda p: p.value)
def test_steady_scenario_matches_run_steady_state(policy):
    config = _config(policy)
    legacy = run_steady_state(
        config, TINY, MEASURE, warmup_min=WARM_MIN, warmup_max=WARM_MAX,
        seed=42,
    )
    scenario = SteadyStateScenario(
        measure_transactions=MEASURE, warmup_min=WARM_MIN, warmup_max=WARM_MAX
    )
    via_scenario = scenario.execute(ExperimentRunner(config, TINY, seed=42))
    assert dataclasses.asdict(via_scenario) == dataclasses.asdict(legacy)


def test_steady_scenario_with_checkpoints_matches():
    config = _config(CachePolicy.FACE)
    legacy = run_steady_state(
        config, TINY, MEASURE, warmup_min=WARM_MIN, warmup_max=WARM_MAX,
        checkpoint_interval=0.5, seed=7,
    )
    scenario = SteadyStateScenario(
        measure_transactions=MEASURE, warmup_min=WARM_MIN,
        warmup_max=WARM_MAX, checkpoint_interval=0.5,
    )
    via_scenario = scenario.execute(ExperimentRunner(config, TINY, seed=7))
    assert dataclasses.asdict(via_scenario) == dataclasses.asdict(legacy)


# -- crash recovery: the cell path IS the direct path -------------------------


@pytest.mark.parametrize(
    "policy", [CachePolicy.FACE_GSC, CachePolicy.LC, CachePolicy.NONE],
    ids=lambda p: p.value,
)
def test_crash_cell_matches_direct_execution(policy):
    scenario = CrashRecoveryScenario(**FAST_CRASH)
    config = _config(policy)
    direct = scenario.execute(ExperimentRunner(config, TINY, seed=42))
    spec = CellSpec(key=(policy.value,), config=config, scale=TINY, seed=42,
                    scenario=scenario)
    via_cell = run_cell(spec)
    assert isinstance(via_cell, CrashRun)
    assert dataclasses.asdict(via_cell) == dataclasses.asdict(direct)
    assert via_cell.restart_seconds == direct.report.total_time
    assert via_cell.checkpoints_before_crash >= scenario.min_checkpoints


def test_crash_cells_fan_out_across_processes():
    # Two crash cells through the process pool: the specs (scenario
    # included) and the CrashRun results must survive pickling, and the
    # fan-out must be bit-identical to in-process execution.
    scenario = CrashRecoveryScenario(**FAST_CRASH)
    specs = [
        CellSpec(key=(policy.value,), config=_config(policy), scale=TINY,
                 seed=42, scenario=scenario)
        for policy in (CachePolicy.FACE_GSC, CachePolicy.NONE)
    ]
    parallel = run_cells(specs, jobs=2)
    serial = run_cells(specs, jobs=1)
    assert {
        key: dataclasses.asdict(result) for key, result in parallel.items()
    } == {key: dataclasses.asdict(result) for key, result in serial.items()}


# -- CellSpec / ExperimentConfig wiring ---------------------------------------


def test_resolve_scenario_defaults_to_the_specs_own_protocol():
    spec = CellSpec(
        key=("x",), config=_config(CachePolicy.FACE), scale=TINY, seed=1,
        measure_transactions=77, warmup_min=11, warmup_max=22,
        checkpoint_interval=3.0,
    )
    resolved = spec.resolve_scenario()
    assert resolved == SteadyStateScenario(
        measure_transactions=77, warmup_min=11, warmup_max=22,
        checkpoint_interval=3.0,
    )


def test_experiment_config_builds_a_crash_scenario():
    experiment = ExperimentConfig(
        scale=TINY, scenario="crash", checkpoint_interval=0.4,
        crash_point=0.25, crash_max_transactions=9_000,
    )
    spec = CellSpec.from_config(("cell",), experiment)
    scenario = spec.resolve_scenario()
    assert isinstance(scenario, CrashRecoveryScenario)
    assert scenario.checkpoint_interval == 0.4
    assert scenario.crash_point == 0.25
    assert scenario.max_transactions == 9_000


def test_crash_experiment_requires_an_interval():
    with pytest.raises(ConfigError, match="checkpoint_interval"):
        ExperimentConfig(scale=TINY, scenario="crash")


# -- validation and pickling --------------------------------------------------


@pytest.mark.parametrize(
    "kwargs",
    [
        dict(checkpoint_interval=0.0),
        dict(crash_point=0.0),
        dict(crash_point=1.0),
        dict(min_checkpoints=0),
        dict(max_transactions=0),
    ],
)
def test_crash_scenario_rejects_bad_knobs(kwargs):
    with pytest.raises(ConfigError):
        CrashRecoveryScenario(**kwargs)


@pytest.mark.parametrize(
    "kwargs",
    [dict(measure_transactions=0), dict(checkpoint_interval=-1.0)],
)
def test_steady_scenario_rejects_bad_knobs(kwargs):
    with pytest.raises(ConfigError):
        SteadyStateScenario(**kwargs)


def test_scenarios_pickle_and_hash():
    for scenario in (
        SteadyStateScenario(measure_transactions=10),
        CrashRecoveryScenario(checkpoint_interval=0.3, crash_point=0.75),
    ):
        clone = pickle.loads(pickle.dumps(scenario))
        assert clone == scenario
        assert hash(clone) == hash(scenario)
