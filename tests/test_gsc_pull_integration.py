"""GSC's DRAM LRU-tail pull, end to end through the engine.

The pull path crosses three modules (cache → dbms callback → buffer pool)
and must respect the WAL rule for every pulled dirty frame.  These tests
exercise it through the real engine rather than with a stub callback.
"""

import pytest

from repro.core.config import CachePolicy
from repro.wal.records import UpdateRecord
from tests.conftest import kv_dbms_with, kv_read, kv_write


@pytest.fixture
def dbms():
    # Small cache + small scan depth so replacements (and pulls) happen often.
    return kv_dbms_with(
        CachePolicy.FACE_GSC, cache_pages=32, scan_depth=8, buffer_pages=16
    )


def drive(dbms, rounds=6):
    for round_ in range(rounds):
        for k in range(0, 64, 2):
            kv_write(dbms, k, f"r{round_}-{k}")
        for k in range(64):
            kv_read(dbms, k)


def test_pulls_happen_during_replacement(dbms):
    pulled = []
    original = dbms._pull_frames

    def counting_pull(n):
        frames = original(n)
        pulled.extend(frames)
        return frames

    dbms.cache.set_pull_callback(counting_pull)
    drive(dbms)
    assert pulled, "GSC never pulled from the DRAM LRU tail"
    # Pulled frames are genuinely evicted (no longer resident).
    assert all(f.page_id not in dbms.buffer or
               dbms.buffer.peek(f.page_id) is not f for f in pulled[-5:])


def test_wal_rule_holds_for_pulled_dirty_frames(dbms):
    drive(dbms)
    # Every dirty page image present in the flash cache must have its
    # update records durable (WAL rule) - including pages that entered via
    # the pull path.  Verify via LSN: flushed_lsn covers every cached LSN.
    cache = dbms.cache
    for position in cache.directory.live_positions():
        meta = cache.directory.meta_at(position)
        assert meta.lsn <= dbms.log.flushed_lsn


def test_engine_consistent_after_pull_heavy_run(dbms):
    drive(dbms)
    from repro.db.verify import verify_all

    report = verify_all(dbms)
    assert report.ok, report.violations


def test_pull_heavy_run_survives_crash(dbms):
    drive(dbms, rounds=4)
    from repro.recovery.restart import crash_and_restart

    crash_and_restart(dbms)
    for k in range(0, 64, 2):
        assert kv_read(dbms, k) == (k, f"r3-{k}")
