"""Documentation integrity: the docs must reference real artefacts.

DESIGN.md's per-experiment index and README's benchmark table name files
and modules; these tests keep them from drifting as the code evolves.
"""

from __future__ import annotations

import pathlib
import re

ROOT = pathlib.Path(__file__).resolve().parent.parent


def read(name: str) -> str:
    return (ROOT / name).read_text()


def test_required_documents_exist():
    for name in ("README.md", "DESIGN.md", "EXPERIMENTS.md", "LICENSE"):
        assert (ROOT / name).exists(), name


def test_design_mentions_every_benchmark_file():
    design = read("DESIGN.md") + read("README.md")
    for path in sorted((ROOT / "benchmarks").glob("bench_*.py")):
        assert path.name in design, f"{path.name} missing from the docs"


def test_every_referenced_benchmark_exists():
    for doc in ("DESIGN.md", "README.md", "EXPERIMENTS.md"):
        for name in re.findall(r"bench_[a-z0-9_{},]+\.py", read(doc)):
            if "{" in name:  # brace-expansion shorthand in prose
                stem, _, rest = name.partition("{")
                variants, _, suffix = rest.partition("}")
                expanded = [f"{stem}{v}{suffix}" for v in variants.split(",")]
            else:
                expanded = [name]
            for filename in expanded:
                assert (ROOT / "benchmarks" / filename).exists(), (
                    f"{doc} references missing {filename}"
                )


def test_design_module_map_matches_source_tree():
    design = read("DESIGN.md")
    for module in (ROOT / "src" / "repro").rglob("*.py"):
        if module.name in ("__init__.py", "__main__.py"):
            continue
        assert module.name in design, (
            f"src module {module.relative_to(ROOT)} missing from DESIGN.md"
        )


def test_readme_examples_exist():
    readme = read("README.md")
    for name in re.findall(r"examples/([a-z_]+\.py)", readme):
        assert (ROOT / "examples" / name).exists(), name
    for path in (ROOT / "examples").glob("*.py"):
        assert path.name in readme, f"example {path.name} not advertised"


def test_experiments_covers_every_paper_artifact():
    experiments = read("EXPERIMENTS.md")
    for artifact in (
        "Table 1", "Table 3", "Table 4", "Table 5", "Table 6",
        "Figure 4", "Figure 5", "Figure 6", "2.2",
    ):
        assert artifact in experiments, f"{artifact} missing from EXPERIMENTS.md"
