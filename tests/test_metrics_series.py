"""Edge cases of :class:`ThroughputSeries` (ISSUE: windowed_tpmc hardening).

The series feeds Figure 6 plots; these tests pin the empty-series and
partial-final-window behaviours and the non-monotonic sample guard.
"""

from __future__ import annotations

import pytest

from repro.errors import ConfigError
from repro.sim.metrics import ThroughputSeries


def test_empty_series_yields_no_windows():
    series = ThroughputSeries()
    assert series.windowed_tpmc(10.0) == []
    assert series.final_commits == 0


def test_nonpositive_window_yields_no_windows():
    series = ThroughputSeries()
    series.record(1.0, 10)
    assert series.windowed_tpmc(0.0) == []
    assert series.windowed_tpmc(-5.0) == []


def test_single_sample_lands_in_partial_final_window():
    series = ThroughputSeries()
    series.record(3.0, 30)
    # One 10s window, closed early: rate is still commits * 60 / window.
    assert series.windowed_tpmc(10.0) == [(10.0, 30 * 60.0 / 10.0)]


def test_partial_final_window_after_full_windows():
    series = ThroughputSeries()
    series.record(10.0, 100)
    series.record(20.0, 180)
    series.record(25.0, 200)  # 5s into the third window
    windows = series.windowed_tpmc(10.0)
    assert [w for w, _ in windows] == [10.0, 20.0, 30.0]
    assert windows[0][1] == pytest.approx(100 * 6.0)
    assert windows[1][1] == pytest.approx(80 * 6.0)
    # The tail window reports the commits it saw at the full-window rate.
    assert windows[2][1] == pytest.approx(20 * 6.0)


def test_no_trailing_window_when_no_new_commits():
    series = ThroughputSeries()
    series.record(10.0, 100)
    series.record(12.0, 100)  # time advances, commits do not
    windows = series.windowed_tpmc(10.0)
    assert windows == [(10.0, 100 * 6.0)]


def test_record_rejects_time_going_backwards():
    series = ThroughputSeries()
    series.record(5.0, 10)
    with pytest.raises(ConfigError, match="earlier"):
        series.record(4.0, 20)


def test_record_rejects_decreasing_commits():
    series = ThroughputSeries()
    series.record(5.0, 10)
    with pytest.raises(ConfigError, match="cumulative"):
        series.record(6.0, 9)


def test_record_accepts_equal_timestamps_and_counts():
    series = ThroughputSeries()
    series.record(5.0, 10)
    series.record(5.0, 10)  # idempotent duplicate sample is fine
    assert series.final_commits == 10
