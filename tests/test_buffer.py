"""DRAM buffer pool: LRU, pins, evictions, and the FaCE flag protocol."""

import pytest

from repro.buffer.frame import Frame
from repro.buffer.pool import BufferPool
from repro.db.page import Page
from repro.errors import BufferFullError, ConfigError


def page(pid: int) -> Page:
    return Page(pid, slots={0: ("r", pid)})


@pytest.fixture
def pool() -> BufferPool:
    return BufferPool(capacity=3)


def fill(pool: BufferPool, *pids: int):
    for pid in pids:
        pool.make_room()
        pool.admit(page(pid))


class TestLookupAndLru:
    def test_miss_then_hit_counted(self, pool):
        assert pool.lookup(1) is None
        fill(pool, 1)
        assert pool.lookup(1) is not None
        assert pool.stats.misses == 1
        assert pool.stats.hits == 1

    def test_lru_victim_is_least_recently_used(self, pool):
        fill(pool, 1, 2, 3)
        pool.lookup(1)  # 2 becomes LRU
        victim = pool.make_room()
        assert victim.page_id == 2

    def test_hit_sets_reference_bit(self, pool):
        fill(pool, 1)
        frame = pool.lookup(1)
        assert frame.referenced

    def test_peek_does_not_disturb_lru_or_stats(self, pool):
        fill(pool, 1, 2, 3)
        pool.peek(1)
        assert pool.stats.hits == 0
        assert pool.make_room().page_id == 1


class TestAdmissionEviction:
    def test_admit_into_full_pool_is_error(self, pool):
        fill(pool, 1, 2, 3)
        with pytest.raises(BufferFullError):
            pool.admit(page(4))

    def test_duplicate_admit_rejected(self, pool):
        fill(pool, 1)
        with pytest.raises(ConfigError):
            pool.admit(page(1))

    def test_make_room_noop_when_space(self, pool):
        fill(pool, 1)
        assert pool.make_room() is None

    def test_pinned_frames_survive_eviction(self, pool):
        fill(pool, 1, 2, 3)
        pool.peek(1).pin()
        victim = pool.make_room()
        assert victim.page_id == 2
        assert 1 in pool

    def test_all_pinned_raises(self, pool):
        fill(pool, 1, 2, 3)
        for pid in (1, 2, 3):
            pool.peek(pid).pin()
        with pytest.raises(BufferFullError):
            pool.make_room()

    def test_unpin_below_zero_raises(self, pool):
        fill(pool, 1)
        with pytest.raises(ValueError):
            pool.peek(1).unpin()

    def test_eviction_stats_split_clean_dirty(self, pool):
        fill(pool, 1, 2, 3)
        pool.peek(1).dirty = True
        pool.make_room()  # evicts 1 (dirty)
        pool.admit(page(4))
        pool.make_room()  # evicts 2 (clean)
        assert pool.stats.dirty_evictions == 1
        assert pool.stats.clean_evictions == 1

    def test_fdirty_only_counts_as_dirty_eviction(self, pool):
        fill(pool, 1, 2, 3)
        pool.peek(1).fdirty = True
        pool.make_room()
        assert pool.stats.dirty_evictions == 1


class TestPullTail:
    def test_pulls_from_lru_end(self, pool):
        fill(pool, 1, 2, 3)
        pulled = pool.pull_tail(2)
        assert [f.page_id for f in pulled] == [1, 2]
        assert len(pool) == 1

    def test_skips_pinned(self, pool):
        fill(pool, 1, 2, 3)
        pool.peek(1).pin()
        pulled = pool.pull_tail(2)
        assert [f.page_id for f in pulled] == [2, 3]

    def test_short_pool_returns_fewer(self, pool):
        fill(pool, 1)
        assert len(pool.pull_tail(5)) == 1


class TestFlagProtocol:
    """The dirty/fdirty transitions of the paper's Algorithm 1."""

    def test_fetch_from_disk_clears_both(self):
        frame = Frame(page=page(1), dirty=True, fdirty=True)
        frame.on_fetch_from_disk()
        assert not frame.dirty and not frame.fdirty

    def test_update_sets_both(self):
        frame = Frame(page=page(1))
        frame.on_update()
        assert frame.dirty and frame.fdirty

    def test_fetch_from_flash_syncs_fdirty_preserves_disk_staleness(self):
        frame = Frame(page=page(1))
        frame.on_fetch_from_flash(flash_copy_dirty=True)
        assert frame.dirty  # disk copy may still be stale
        assert not frame.fdirty  # DRAM and flash are in sync
        frame.on_fetch_from_flash(flash_copy_dirty=False)
        assert not frame.dirty


class TestMisc:
    def test_dirty_frames_in_lru_order(self, pool):
        fill(pool, 1, 2, 3)
        pool.peek(1).dirty = True
        pool.peek(3).fdirty = True
        assert [f.page_id for f in pool.dirty_frames()] == [1, 3]

    def test_wipe_clears_contents_keeps_stats(self, pool):
        fill(pool, 1, 2)
        pool.lookup(1)
        pool.wipe()
        assert len(pool) == 0
        assert pool.stats.hits == 1

    def test_drop_without_eviction_count(self, pool):
        fill(pool, 1)
        pool.drop(1)
        assert pool.stats.evictions == 0

    def test_capacity_validation(self):
        with pytest.raises(ConfigError):
            BufferPool(0)

    def test_hit_rate(self, pool):
        fill(pool, 1)
        pool.lookup(1)  # hit
        pool.lookup(2)  # miss
        assert pool.stats.hit_rate == pytest.approx(0.5)
