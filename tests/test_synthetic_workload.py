"""Synthetic Zipfian key-value workload."""

import pytest

from repro.core.config import CachePolicy
from repro.core.dbms import SimulatedDBMS
from repro.errors import WorkloadError
from repro.workload.synthetic import SyntheticKVWorkload, ZipfGenerator
from tests.conftest import tiny_config

# Direct SyntheticKVWorkload construction is deprecated in favour of
# make_workload("ycsb", ...); these tests pin the legacy behaviour itself,
# so silence the (separately tested) warning rather than sprinkle
# pytest.warns around every construction.
pytestmark = pytest.mark.filterwarnings(
    "ignore:SyntheticKVWorkload is deprecated:DeprecationWarning"
)


def test_direct_construction_warns_deprecation():
    dbms = SimulatedDBMS(tiny_config(CachePolicy.NONE))
    with pytest.warns(DeprecationWarning, match=r'make_workload\("ycsb"'):
        SyntheticKVWorkload(dbms, n_keys=100, seed=1)


def test_registry_path_does_not_warn():
    # The warning's entire point is steering callers to the registry; the
    # replacement route must therefore never trip it.
    import warnings

    from repro.tpcc.scale import TINY
    from repro.workload.registry import make_workload

    dbms = SimulatedDBMS(tiny_config(CachePolicy.NONE))
    with warnings.catch_warnings():
        warnings.simplefilter("error", DeprecationWarning)
        make_workload("ycsb", dbms, TINY, n_keys=100, seed=1)


class TestZipf:
    def test_ranks_within_range(self):
        gen = ZipfGenerator(100, 0.99, seed=1)
        draws = [gen.sample() for _ in range(2000)]
        assert min(draws) >= 0
        assert max(draws) < 100

    def test_skew_concentrates_on_low_ranks(self):
        gen = ZipfGenerator(1000, 0.99, seed=1)
        draws = [gen.sample() for _ in range(20_000)]
        top10 = sum(1 for d in draws if d < 10)
        assert top10 / len(draws) > 0.2  # far above the uniform 1%

    def test_zero_exponent_is_uniform(self):
        gen = ZipfGenerator(10, 0.0, seed=1)
        assert all(
            gen.popularity(rank) == pytest.approx(0.1) for rank in range(10)
        )

    def test_popularity_sums_to_one(self):
        gen = ZipfGenerator(50, 1.2, seed=1)
        assert sum(gen.popularity(r) for r in range(50)) == pytest.approx(1.0)

    def test_higher_s_means_more_skew(self):
        mild = ZipfGenerator(100, 0.5, seed=1)
        steep = ZipfGenerator(100, 1.5, seed=1)
        assert steep.popularity(0) > mild.popularity(0)

    def test_determinism(self):
        a = ZipfGenerator(100, 0.99, seed=9)
        b = ZipfGenerator(100, 0.99, seed=9)
        assert [a.sample() for _ in range(50)] == [b.sample() for _ in range(50)]

    def test_validation(self):
        with pytest.raises(WorkloadError):
            ZipfGenerator(0, 1.0)
        with pytest.raises(WorkloadError):
            ZipfGenerator(10, -0.1)


class TestWorkload:
    def make(self, **kwargs) -> SyntheticKVWorkload:
        dbms = SimulatedDBMS(
            tiny_config(CachePolicy.FACE_GSC, disk_capacity_pages=8192,
                        cache_pages=96, buffer_pages=16)
        )
        workload = SyntheticKVWorkload(dbms, n_keys=500, seed=3, **kwargs)
        workload.load()
        return workload

    def test_load_populates_all_keys(self):
        workload = self.make()
        for key in (0, 250, 499):
            rid = workload.dbms.index_lookup("synthetic_kv_pk", (key,))
            row = workload.dbms.fetch_row("synthetic_kv", rid)
            assert row[0] == key
            assert row[2] == 0

    def test_run_commits_and_updates(self):
        workload = self.make(update_fraction=1.0, ops_per_tx=4)
        workload.run(100)
        assert workload.committed == 100
        assert workload.dbms.committed == 100
        # Versions moved somewhere.
        total_versions = 0
        for key in range(500):
            rid = workload.dbms.index_lookup("synthetic_kv_pk", (key,))
            total_versions += workload.dbms.fetch_row("synthetic_kv", rid)[2]
        assert total_versions == 400  # 100 tx x 4 updates

    def test_read_only_mix_never_dirties(self):
        workload = self.make(update_fraction=0.0)
        workload.run(50)
        assert workload.dbms.cache.stats.dirty_evictions == 0

    def test_skew_drives_cache_hits(self):
        hot = self.make(zipf_s=1.2)
        cold = self.make(zipf_s=0.0)
        for w in (hot, cold):
            w.run(150)
            w.dbms.reset_measurements()
            w.run(300)
        hot_rate = hot.dbms.buffer.stats.hit_rate
        cold_rate = cold.dbms.buffer.stats.hit_rate
        assert hot_rate > cold_rate

    def test_validation(self):
        dbms = SimulatedDBMS(tiny_config())
        with pytest.raises(WorkloadError):
            SyntheticKVWorkload(dbms, update_fraction=1.5)
        with pytest.raises(WorkloadError):
            SyntheticKVWorkload(dbms, ops_per_tx=0)
        workload = SyntheticKVWorkload(dbms, n_keys=10)
        with pytest.raises(WorkloadError):
            workload.run(-1)

    def test_crash_safe_like_everything_else(self):
        from repro.recovery.restart import crash_and_restart

        workload = self.make(update_fraction=1.0, ops_per_tx=2)
        workload.run(100)
        crash_and_restart(workload.dbms)
        total = 0
        for key in range(500):
            rid = workload.dbms.index_lookup("synthetic_kv_pk", (key,))
            total += workload.dbms.fetch_row("synthetic_kv", rid)[2]
        assert total == 200
