"""Page representation: slot ops, LSN stamping, snapshots, serde."""

import pytest

from repro.db.page import Page, PageImage
from repro.errors import StorageError


def test_put_get_delete_with_lsn_stamps():
    page = Page(7)
    page.put(0, (1, "a"), lsn=5)
    assert page.get(0) == (1, "a")
    assert page.lsn == 5
    page.delete(0, lsn=9)
    assert page.get(0) is None
    assert page.lsn == 9


def test_delete_missing_slot_is_idempotent():
    page = Page(7)
    page.delete(3, lsn=2)
    assert page.lsn == 2


def test_image_is_a_frozen_snapshot():
    page = Page(1)
    page.put(0, ("before",), lsn=1)
    image = page.to_image()
    page.put(0, ("after",), lsn=2)
    assert image.slots[0] == ("before",)
    assert image.lsn == 1


def test_image_thaw_is_independent_copy():
    image = PageImage(3, 10, {0: ("x",)})
    a = image.to_page()
    b = image.to_page()
    a.put(0, ("changed",), lsn=11)
    assert b.get(0) == ("x",)
    assert image.slots[0] == ("x",)


def test_tuple_slot_keys_for_index_pages():
    page = Page(2)
    page.put((1, 5, "BAROUGHT"), (100, 3), lsn=1)
    assert page.get((1, 5, "BAROUGHT")) == (100, 3)


class TestSerde:
    def test_roundtrip_mixed_types(self):
        page = Page(42, lsn=77)
        page.slots = {
            0: (1, 2.5, "text", None),
            5: (-(2**40), "", "unicode-é中"),
        }
        restored = Page.from_bytes(page.to_bytes())
        assert restored.page_id == 42
        assert restored.lsn == 77
        assert restored.slots == page.slots

    def test_roundtrip_tuple_keys(self):
        page = Page(1, lsn=3)
        page.slots = {(1, 2, "NAME"): (10, 4), 7: ("plain",)}
        restored = Page.from_bytes(page.to_bytes())
        assert restored.slots == page.slots

    def test_roundtrip_empty_page(self):
        restored = Page.from_bytes(Page(9, lsn=1).to_bytes())
        assert restored.page_id == 9
        assert restored.slots == {}

    def test_bool_degrades_to_int(self):
        page = Page(1)
        page.slots = {0: (True, False)}
        restored = Page.from_bytes(page.to_bytes())
        assert restored.slots[0] == (1, 0)

    def test_bad_magic_rejected(self):
        data = bytearray(Page(1).to_bytes())
        data[0] ^= 0xFF
        with pytest.raises(StorageError):
            Page.from_bytes(bytes(data))

    def test_truncated_header_rejected(self):
        with pytest.raises(StorageError):
            Page.from_bytes(b"\x01\x02")

    def test_unsupported_value_type_rejected(self):
        page = Page(1)
        page.slots = {0: ([1, 2],)}
        with pytest.raises(StorageError):
            page.to_bytes()

    def test_nested_tuples_roundtrip(self):
        page = Page(1)
        page.slots = {0: ((1, (2, "x")), "y")}
        restored = Page.from_bytes(page.to_bytes())
        assert restored.slots == page.slots
