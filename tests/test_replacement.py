"""DRAM replacement policies: LRU and CLOCK."""

import pytest

from repro.buffer.frame import Frame
from repro.buffer.pool import BufferPool
from repro.buffer.replacement import ClockPolicy, LruPolicy, make_policy
from repro.db.page import Page
from repro.errors import BufferFullError, ConfigError


def frame(pid: int) -> Frame:
    return Frame(page=Page(pid))


class TestClockPolicy:
    def test_unreferenced_frame_is_victim(self):
        clock = ClockPolicy()
        for pid in (1, 2, 3):
            clock.insert(frame(pid))
        victims = clock.victims(1)
        assert victims[0].page_id == 1

    def test_referenced_frame_gets_second_chance(self):
        clock = ClockPolicy()
        frames = [frame(pid) for pid in (1, 2, 3)]
        for f in frames:
            clock.insert(f)
        clock.touch(frames[0])
        victims = clock.victims(1)
        assert victims[0].page_id == 2  # frame 1 was spared once
        assert not frames[0].referenced  # chance consumed

    def test_second_sweep_takes_previously_referenced(self):
        clock = ClockPolicy()
        frames = [frame(pid) for pid in (1, 2)]
        for f in frames:
            clock.insert(f)
        for f in frames:
            clock.touch(f)
        victims = clock.victims(2)
        assert {v.page_id for v in victims} == {1, 2}

    def test_pinned_frames_skipped(self):
        clock = ClockPolicy()
        frames = [frame(pid) for pid in (1, 2)]
        for f in frames:
            clock.insert(f)
        frames[0].pin()
        assert clock.victims(1)[0].page_id == 2

    def test_all_pinned_raises(self):
        clock = ClockPolicy()
        f = frame(1)
        f.pin()
        clock.insert(f)
        with pytest.raises(BufferFullError):
            clock.victims(1)

    def test_remove_keeps_ring_consistent(self):
        clock = ClockPolicy()
        frames = [frame(pid) for pid in range(5)]
        for f in frames:
            clock.insert(f)
        clock.remove(2)
        clock.remove(0)
        remaining = {f.page_id for f in clock.frames()}
        assert remaining == {1, 3, 4}
        assert len(clock.victims(3)) == 3

    def test_empty_ring(self):
        clock = ClockPolicy()
        with pytest.raises(BufferFullError):
            clock.victims(1)
        assert clock.frames() == []


class TestFactory:
    def test_known_policies(self):
        assert isinstance(make_policy("lru"), LruPolicy)
        assert isinstance(make_policy("clock"), ClockPolicy)

    def test_unknown_policy(self):
        with pytest.raises(ConfigError):
            make_policy("arc")


class TestClockBufferPool:
    @pytest.fixture
    def pool(self) -> BufferPool:
        return BufferPool(capacity=3, policy="clock")

    def fill(self, pool, *pids):
        for pid in pids:
            pool.make_room()
            pool.admit(Page(pid))

    def test_hot_page_survives(self, pool):
        self.fill(pool, 1, 2, 3)
        pool.lookup(1)  # sets the reference bit
        victim = pool.make_room()
        assert victim.page_id == 2
        assert 1 in pool

    def test_pull_tail_respects_reference_bits(self, pool):
        self.fill(pool, 1, 2, 3)
        pool.lookup(2)
        pulled = pool.pull_tail(2)
        assert 2 not in {f.page_id for f in pulled}

    def test_stats_and_wipe_behave_like_lru_pool(self, pool):
        self.fill(pool, 1)
        pool.lookup(1)
        pool.lookup(9)
        assert pool.stats.hits == 1
        assert pool.stats.misses == 1
        pool.wipe()
        assert len(pool) == 0


class TestEngineUnderClock:
    def test_full_system_runs_and_recovers_with_clock_buffer(self):
        from repro.core.config import CachePolicy
        from repro.recovery.restart import crash_and_restart
        from tests.conftest import kv_dbms_with, kv_read, kv_write

        dbms = kv_dbms_with(CachePolicy.FACE_GSC, buffer_policy="clock")
        for k in range(64):
            kv_write(dbms, k, f"clock-{k}")
        crash_and_restart(dbms)
        for k in range(64):
            assert kv_read(dbms, k) == (k, f"clock-{k}")
