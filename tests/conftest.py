"""Shared fixtures and helpers for the FaCE reproduction test suite."""

from __future__ import annotations

import pytest

from repro.buffer.frame import Frame
from repro.core.config import CachePolicy, SystemConfig
from repro.core.dbms import SimulatedDBMS
from repro.db.page import Page, PageImage
from repro.db.schema import TableSchema, int_col, str_col
from repro.storage.hdd import DiskDevice
from repro.storage.profiles import HDD_CHEETAH_15K, MLC_SAMSUNG_470
from repro.storage.ssd import FlashDevice
from repro.storage.volume import Volume

#: A small schema used by direct-engine tests (not TPC-C).
KV_SCHEMA = TableSchema(
    name="kv",
    columns=(int_col("k"), str_col("v", 16)),
    primary_key=("k",),
    slots_per_page=4,
)


def make_image(page_id: int, lsn: int = 0, **slots) -> PageImage:
    """Build a PageImage with integer slots from kwargs like s0=('a',)."""
    parsed = {int(k[1:]): tuple(v) for k, v in slots.items()}
    return PageImage(page_id=page_id, lsn=lsn, slots=parsed)


def make_frame(page_id: int, dirty: bool = False, fdirty: bool = False) -> Frame:
    """A buffer frame holding a one-row page, for cache-policy tests."""
    page = Page(page_id, lsn=page_id * 10 + 1, slots={0: ("row", page_id)})
    return Frame(page=page, dirty=dirty, fdirty=fdirty)


@pytest.fixture
def flash_volume() -> Volume:
    """A small MLC flash volume (256 cache-capable pages + headroom)."""
    return Volume(FlashDevice(MLC_SAMSUNG_470, 512))


@pytest.fixture
def disk_volume() -> Volume:
    """A small single-disk volume for cache-policy tests."""
    return Volume(DiskDevice(HDD_CHEETAH_15K, 4096))


def tiny_config(policy: CachePolicy = CachePolicy.FACE, **overrides) -> SystemConfig:
    """A minimal but complete system configuration for engine tests."""
    defaults = dict(
        buffer_pages=8,
        cache_policy=policy,
        cache_pages=64,
        segment_entries=32,
        scan_depth=8,
        n_disks=1,
        disk_capacity_pages=4096,
        log_capacity_pages=4096,
    )
    defaults.update(overrides)
    return SystemConfig(**defaults)


@pytest.fixture
def kv_dbms() -> SimulatedDBMS:
    """A DBMS with one loaded 16-page key/value table (keys 0..63)."""
    dbms = SimulatedDBMS(tiny_config())
    dbms.create_table(KV_SCHEMA, expected_rows=64, growth_factor=2.0)
    dbms.create_index("kv_pk", "kv", n_pages=4)
    dbms.begin_load()
    for k in range(64):
        rid = dbms.load_insert("kv", (k, f"v{k}"))
        dbms.load_index_insert("kv_pk", (k,), rid)
    dbms.finish_load()
    return dbms


def kv_dbms_with(policy: CachePolicy, **overrides) -> SimulatedDBMS:
    """Build the kv engine under an arbitrary cache policy."""
    dbms = SimulatedDBMS(tiny_config(policy, **overrides))
    dbms.create_table(KV_SCHEMA, expected_rows=64, growth_factor=2.0)
    dbms.create_index("kv_pk", "kv", n_pages=4)
    dbms.begin_load()
    for k in range(64):
        rid = dbms.load_insert("kv", (k, f"v{k}"))
        dbms.load_index_insert("kv_pk", (k,), rid)
    dbms.finish_load()
    return dbms


def kv_read(dbms: SimulatedDBMS, k: int) -> tuple | None:
    """Read key ``k`` through the full data path."""
    rid = dbms.index_lookup("kv_pk", (k,))
    return dbms.fetch_row("kv", rid) if rid is not None else None


def kv_write(dbms: SimulatedDBMS, k: int, value: str, commit: bool = True):
    """Update key ``k`` in its own transaction; returns the transaction."""
    tx = dbms.begin()
    rid = dbms.index_lookup("kv_pk", (k,))
    dbms.update_row(tx, "kv", rid, (k, value))
    if commit:
        dbms.commit(tx)
    return tx
