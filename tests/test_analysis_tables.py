"""Table/series formatting helpers used by the benchmark harness."""

from repro.analysis.tables import format_percent_rows, format_series, format_table


def test_format_table_structure():
    text = format_table("Title", ["a", "b"], [(1, 2.5), ("x", 3)])
    lines = text.splitlines()
    assert lines[0] == "Title"
    assert "a" in lines[1] and "b" in lines[1]
    assert set(lines[2]) <= {"-", "+"}
    assert "2.5" in lines[3]
    assert "x" in lines[4]


def test_format_table_thousands_separator():
    text = format_table("t", ["n"], [(1234567,)])
    assert "1,234,567" in text


def test_format_percent_rows_scales():
    text = format_percent_rows(
        "Hit rates", ["2GB", "4GB"], [("FaCE", [0.655, 0.726])]
    )
    assert "65.5" in text
    assert "72.6" in text
    assert "FaCE" in text


def test_format_series_two_columns():
    text = format_series("Fig", "x", "tpmC", [(4.0, 1000.0), (8.0, 2000.0)])
    lines = text.splitlines()
    assert "x" in lines[1] and "tpmC" in lines[1]
    assert "4.0" in lines[3] or "4.0" in text
