"""Base device timing model: classification, charging, statistics."""

import pytest

from repro.errors import OutOfRangeError
from repro.storage.device import Device, IOKind
from repro.storage.profiles import HDD_CHEETAH_15K, MLC_SAMSUNG_470


@pytest.fixture
def dev() -> Device:
    return Device(MLC_SAMSUNG_470, capacity_pages=1000)


def test_first_access_is_random(dev):
    dev.read(10)
    assert dev.stats.ops[IOKind.RANDOM_READ] == 1


def test_contiguous_reads_become_sequential(dev):
    dev.read(10)
    dev.read(11)
    dev.read(12)
    assert dev.stats.ops[IOKind.SEQ_READ] == 2
    assert dev.stats.ops[IOKind.RANDOM_READ] == 1


def test_jump_breaks_read_sequentiality(dev):
    dev.read(10)
    dev.read(11)
    dev.read(500)
    assert dev.stats.ops[IOKind.RANDOM_READ] == 2


def test_read_and_write_streams_tracked_independently(dev):
    """mvFIFO's append stream must stay sequential despite interleaved
    random reads (the whole point of FIFO flash management)."""
    dev.write(0)
    for i in range(1, 5):
        dev.read(700 + 13 * i)  # random reads elsewhere
        dev.write(i)  # appends continue
    assert dev.stats.ops[IOKind.SEQ_WRITE] == 4
    assert dev.stats.ops[IOKind.RANDOM_WRITE] == 1


def test_service_times_match_profile(dev):
    t = dev.read(42)
    assert t == pytest.approx(MLC_SAMSUNG_470.random_read_time)
    t = dev.read(43)
    assert t == pytest.approx(MLC_SAMSUNG_470.seq_read_time)


def test_multipage_charged_at_bandwidth(dev):
    t = dev.read(100, npages=64)
    assert t == pytest.approx(64 * MLC_SAMSUNG_470.seq_read_time)
    assert dev.stats.pages[IOKind.SEQ_READ] == 64


def test_busy_time_accumulates(dev):
    total = dev.read(1) + dev.write(500) + dev.read(600, 8)
    assert dev.busy_time == pytest.approx(total)


def test_out_of_range_rejected(dev):
    with pytest.raises(OutOfRangeError):
        dev.read(1000)
    with pytest.raises(OutOfRangeError):
        dev.write(999, npages=2)
    with pytest.raises(OutOfRangeError):
        dev.read(-1)


def test_zero_capacity_rejected():
    with pytest.raises(OutOfRangeError):
        Device(MLC_SAMSUNG_470, capacity_pages=0)


def test_reset_stats_zeroes_counters(dev):
    dev.read(1)
    dev.write(2)
    dev.reset_stats()
    assert dev.busy_time == 0.0
    assert dev.stats.total_ops == 0


def test_stats_snapshot_and_properties(dev):
    dev.read(1)
    dev.write(500)
    dev.write(501)
    snap = dev.stats.snapshot()
    assert snap["ops_random_read"] == 1
    assert snap["ops_random_write"] == 1
    assert snap["ops_seq_write"] == 1
    assert dev.stats.read_pages == 1
    assert dev.stats.write_pages == 2


def test_disk_random_ops_much_slower_than_flash():
    disk = Device(HDD_CHEETAH_15K, 1000)
    flash = Device(MLC_SAMSUNG_470, 1000)
    assert disk.read(3) > 50 * flash.read(3)
