"""Workload registry: pluggable workloads behind one API.

The workload redesign (ISSUE: workload-registry tentpole) mirrors the
flash-cache policy registry's shape for *workloads*: one frozen
:class:`~repro.workload.registry.WorkloadEntry` per workload, a canonical
:class:`~repro.workload.registry.WorkloadSpec` identity, knob validation
naming the accepted set, and one driver-factory entry point
(:func:`~repro.workload.registry.make_workload`).  These tests pin the
catalogue, the spec canonicalisation (knob round-trips, presets,
default-dropping), the error surfaces, the page-estimate equivalence with
the legacy TPC-C probe, and the :class:`ExperimentConfig` integration
(config-time validation, ``describe()`` tokens, CellSpec lowering).
"""

from __future__ import annotations

import pytest

from repro.core.config import CachePolicy
from repro.core.dbms import SimulatedDBMS
from repro.errors import ConfigError, WorkloadError
from repro.sim.experiment import ExperimentConfig
from repro.sim.parallel import CellSpec
from repro.tpcc.loader import estimate_db_pages
from repro.tpcc.scale import TINY
from repro.workload.registry import (
    TPCC_SPEC,
    WorkloadSpec,
    available_workloads,
    estimate_workload_pages,
    get_workload_entry,
    make_workload,
    workload_spec,
)
from tests.conftest import tiny_config


class TestCatalogue:
    def test_available_workloads_order(self):
        # tpcc leads (the paper's workload); the additions follow in
        # catalogue order — this is what the CLI offers as choices.
        assert available_workloads() == ("tpcc", "tpch-scan", "ycsb")

    def test_unknown_workload_names_the_known_set(self):
        with pytest.raises(WorkloadError, match="tpcc, tpch-scan, ycsb"):
            get_workload_entry("tpch")

    def test_entries_are_complete(self):
        for name in available_workloads():
            entry = get_workload_entry(name)
            assert entry.name == name
            assert entry.description
            assert entry.tx_kinds, name
            assert entry.headline_kind == entry.tx_kinds[0]
            assert callable(entry.make_driver)
            assert callable(entry.loader)

    def test_tpcc_spec_is_the_default(self):
        assert workload_spec() == TPCC_SPEC
        assert TPCC_SPEC.name == "tpcc"
        assert TPCC_SPEC.token == "tpcc"


class TestSpecCanonicalisation:
    def test_knob_round_trip(self):
        spec = workload_spec("ycsb", {"zipf_s": 0.7, "update_fraction": 0.9})
        entry = get_workload_entry("ycsb")
        resolved = entry.config_knobs(spec)
        assert resolved["zipf_s"] == 0.7
        assert resolved["update_fraction"] == 0.9
        # Untouched knobs keep the entry defaults.
        assert resolved["ops_per_tx"] == dict(entry.knobs)["ops_per_tx"]

    def test_default_valued_knobs_are_dropped(self):
        entry = get_workload_entry("tpch-scan")
        defaults = dict(entry.knobs)
        spec = workload_spec("tpch-scan", {"scan_pages": defaults["scan_pages"]})
        assert spec == workload_spec("tpch-scan")
        assert spec.token == "tpch-scan"

    def test_knobs_sort_for_stable_identity(self):
        a = workload_spec("ycsb", {"zipf_s": 0.7, "ops_per_tx": 4})
        b = workload_spec("ycsb", {"ops_per_tx": 4, "zipf_s": 0.7})
        assert a == b
        assert hash(a) == hash(b)
        assert a.token == "ycsb[ops_per_tx=4,zipf_s=0.7]"

    def test_unknown_knob_names_the_accepted_set(self):
        with pytest.raises(WorkloadError, match="accepted"):
            workload_spec("ycsb", {"bogus": 1})

    def test_preset_applies_then_knobs_override(self):
        churn = workload_spec("ycsb", preset="write-churn")
        assert dict(churn.knobs)["update_fraction"] == 0.9
        overridden = workload_spec(
            "ycsb", {"update_fraction": 0.5}, preset="write-churn"
        )
        assert dict(overridden.knobs)["update_fraction"] == 0.5
        assert dict(overridden.knobs)["zipf_s"] == 0.7  # preset survives

    def test_unknown_preset_raises(self):
        with pytest.raises(WorkloadError, match="preset"):
            workload_spec("ycsb", preset="nope")

    def test_spec_is_hashable_and_picklable(self):
        import pickle

        spec = workload_spec("tpch-scan", {"scan_skew": 0.5})
        assert pickle.loads(pickle.dumps(spec)) == spec
        assert {spec: 1}[spec] == 1


class TestPageEstimates:
    def test_tpcc_matches_legacy_probe(self):
        # Config parity with every pre-registry call site: sizing a system
        # for the default workload must reproduce estimate_db_pages.
        assert estimate_workload_pages(TPCC_SPEC, TINY) == estimate_db_pages(TINY)

    def test_every_workload_estimates_positive(self):
        for name in available_workloads():
            assert estimate_workload_pages(workload_spec(name), TINY) > 0

    def test_estimates_differ_between_workloads(self):
        pages = {
            name: estimate_workload_pages(workload_spec(name), TINY)
            for name in available_workloads()
        }
        assert len(set(pages.values())) == len(pages), pages


class TestMakeWorkload:
    @pytest.mark.parametrize("name", ["tpcc", "tpch-scan", "ycsb"])
    def test_returns_loaded_driver(self, name):
        dbms = SimulatedDBMS(tiny_config(CachePolicy.NONE))
        driver = make_workload(name, dbms, scale=TINY, seed=3)
        entry = get_workload_entry(name)
        for _ in range(5):
            result = driver.run_one()
            assert result.kind in entry.tx_kinds
        assert driver.stats.executed == 5

    def test_headline_commits_counted(self):
        dbms = SimulatedDBMS(tiny_config(CachePolicy.NONE))
        driver = make_workload("tpch-scan", dbms, scale=TINY, seed=3)
        driver.run_one(kind="scan")
        assert driver.stats.neworder_commits == 1  # historic field name

    def test_knobs_reach_the_driver(self):
        dbms = SimulatedDBMS(tiny_config(CachePolicy.NONE))
        driver = make_workload(
            "ycsb", dbms, scale=TINY, seed=3, update_fraction=0.0
        )
        assert driver.update_fraction == 0.0

    def test_legacy_synthetic_construction_warns(self):
        from repro.workload.synthetic import SyntheticKVWorkload

        dbms = SimulatedDBMS(tiny_config(CachePolicy.NONE))
        with pytest.warns(DeprecationWarning, match="make_workload"):
            SyntheticKVWorkload(dbms, n_keys=100, seed=1)


class TestExperimentIntegration:
    def test_config_validates_workload_at_construction(self):
        with pytest.raises(WorkloadError, match="available"):
            ExperimentConfig(workload="tpch")
        with pytest.raises(WorkloadError, match="accepted"):
            ExperimentConfig(workload="ycsb", workload_knobs={"bogus": 1})

    def test_config_canonicalises_knobs(self):
        config = ExperimentConfig(
            scale=TINY, workload="ycsb", workload_knobs={"zipf_s": 0.7}
        )
        assert config.workload_knobs == (("zipf_s", 0.7),)
        assert config.workload_spec() == workload_spec("ycsb", {"zipf_s": 0.7})
        # Default-valued overrides normalise away: equal experiments
        # compare (and hash) equal.
        entry = get_workload_entry("ycsb")
        explicit = ExperimentConfig(
            scale=TINY,
            workload="ycsb",
            workload_knobs={"zipf_s": 0.7, "ops_per_tx": dict(entry.knobs)["ops_per_tx"]},
        )
        assert explicit == config

    def test_describe_carries_the_workload_token(self):
        config = ExperimentConfig(
            scale=TINY, workload="ycsb", workload_knobs={"zipf_s": 0.7}
        )
        assert "workload='ycsb[zipf_s=0.7]'" in config.describe()
        assert "workload" not in ExperimentConfig(scale=TINY).describe()

    def test_trace_donor_requires_tpcc(self):
        from repro.tpcc.scale import BENCH

        with pytest.raises(ConfigError, match="tpcc"):
            ExperimentConfig(scale=TINY, workload="ycsb", trace_donor=BENCH)

    def test_system_config_sizes_by_workload(self):
        # Workload knobs feed the page estimate that sizes the system: a
        # much larger keyspace must grow the flash cache past the floor
        # the default-sized workloads share at TINY.
        small = ExperimentConfig(scale=TINY, workload="ycsb").system_config()
        big = ExperimentConfig(
            scale=TINY, workload="ycsb", workload_knobs={"n_keys": 500_000}
        ).system_config()
        assert big.cache_pages > small.cache_pages

    def test_cellspec_lowering_carries_workload(self):
        config = ExperimentConfig(
            scale=TINY, workload="tpch-scan", workload_knobs={"scan_skew": 0.5}
        )
        spec = CellSpec.from_config(("cell",), config)
        assert spec.workload == "tpch-scan"
        assert spec.workload_knobs == (("scan_skew", 0.5),)
        assert spec.workload_spec() == config.workload_spec()

    def test_workload_is_an_ablation_axis(self):
        from repro.sim.ablation import AXES, resolve_axis

        assert "workload" in AXES
        assert resolve_axis("workload").values == available_workloads()


class TestWorkloadSpecDefaults:
    def test_plain_construction_is_tpcc(self):
        assert WorkloadSpec() == TPCC_SPEC

    def test_resolved_knobs_merges_defaults(self):
        spec = workload_spec("tpch-scan", {"probe_fraction": 0.6})
        resolved = spec.resolved_knobs()
        assert resolved["probe_fraction"] == 0.6
        assert resolved["scan_pages"] == 96
