"""The parallel sweep engine: determinism, fallbacks, and the Sweep API.

The engine's contract (ISSUE: parallel sweep tentpole) is that ``jobs=N``
is an *execution detail*: every result, key order, and callback order is
bit-identical to a serial run.  These tests pin that contract, plus the
graceful degradations — unpicklable cells fail with a clear error before
any work is submitted, and an unavailable process pool falls back to
serial execution with a warning rather than failing the sweep.
"""

from __future__ import annotations

import pickle
import warnings

import pytest

from repro.core.config import CachePolicy, scaled_reference_config
from repro.errors import ConfigError
from repro.sim.parallel import (
    CellProgress,
    CellSpec,
    derive_cell_seed,
    ensure_picklable,
    resolve_jobs,
    run_cells,
)
from repro.sim.sweep import Sweep
from repro.tpcc.loader import estimate_db_pages
from repro.tpcc.scale import TINY

DB_PAGES = estimate_db_pages(TINY)

#: Short measured region: these tests exercise orchestration, not steady
#: state, so each cell should be as cheap as a real simulation can be.
FAST = dict(measure_transactions=120, warmup_min=40, warmup_max=400)


def _spec(key: tuple, fraction: float = 0.08, **overrides) -> CellSpec:
    params = {**FAST, **overrides}
    return CellSpec(
        key=key,
        config=scaled_reference_config(
            DB_PAGES, cache_fraction=fraction, policy=CachePolicy.FACE
        ),
        scale=TINY,
        seed=derive_cell_seed(42, key),
        **params,
    )


def _grid() -> list[CellSpec]:
    return [_spec(("face", f), f) for f in (0.06, 0.10)]


# -- seed derivation ---------------------------------------------------------


def test_derive_cell_seed_is_stable_and_key_sensitive():
    # Pinned value: must never change across runs, processes, or versions —
    # recorded results depend on it.
    assert derive_cell_seed(42, ("face", 0.08)) == derive_cell_seed(
        42, ("face", 0.08)
    )
    assert derive_cell_seed(42, ("face", 0.08)) != derive_cell_seed(
        42, ("face", 0.12)
    )
    assert derive_cell_seed(42, ("face", 0.08)) != derive_cell_seed(
        43, ("face", 0.08)
    )
    # Always a valid non-negative 31-bit seed.
    for key in [(), ("x",), (1, 2.5, "y")]:
        assert 0 <= derive_cell_seed(0, key) < 2**31


# -- serial/parallel parity --------------------------------------------------


def test_parallel_results_bit_identical_to_serial():
    serial = run_cells(_grid(), jobs=1)
    parallel = run_cells(_grid(), jobs=2)
    assert list(serial) == list(parallel)  # key order preserved
    assert serial == parallel  # full RunResult equality, every field


def test_callbacks_fire_in_spec_order_in_both_modes():
    for jobs in (1, 2):
        seen: list[tuple] = []
        progresses: list[CellProgress] = []
        run_cells(
            _grid(),
            jobs=jobs,
            on_cell=lambda key, result: seen.append(key),
            progress=progresses.append,
        )
        assert seen == [("face", 0.06), ("face", 0.10)]
        assert [p.completed for p in progresses] == [1, 2]
        assert all(p.total == 2 for p in progresses)
        assert all(p.elapsed_seconds >= 0 for p in progresses)


def test_duplicate_keys_rejected():
    with pytest.raises(ConfigError, match="unique"):
        run_cells([_spec(("dup",)), _spec(("dup",), 0.10)])


# -- jobs resolution ---------------------------------------------------------


def test_resolve_jobs():
    assert resolve_jobs(1) == 1
    assert resolve_jobs(4) == 4
    assert resolve_jobs(None) >= 1
    assert resolve_jobs(0) >= 1
    with pytest.raises(ConfigError, match="jobs"):
        resolve_jobs(-1)


# -- pickling ----------------------------------------------------------------


def test_unpicklable_cell_fails_with_clear_error():
    spec = _spec(("bad",))
    object.__setattr__(spec, "config", lambda: None)  # lambdas don't pickle
    with pytest.raises(ConfigError, match=r"\('bad',\)"):
        ensure_picklable([spec])
    # jobs=1 never pickles, so the same cell runs serially... but it isn't
    # a real config; just check the parallel path rejects it up front.
    with pytest.raises(ConfigError, match="picklable|worker"):
        run_cells([spec, _spec(("ok",))], jobs=2)


def test_cellspec_pickles_round_trip():
    spec = _spec(("rt", 0.08))
    assert pickle.loads(pickle.dumps(spec)) == spec


# -- pool-unavailable fallback -----------------------------------------------


def test_pool_unavailable_falls_back_to_serial(monkeypatch):
    import repro.sim.parallel as parallel_mod

    def broken_pool(*args, **kwargs):
        raise OSError("no semaphores in this sandbox")

    monkeypatch.setattr(parallel_mod, "ProcessPoolExecutor", broken_pool)
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        fallback = run_cells(_grid(), jobs=2)
    assert any("pool unavailable" in str(w.message) for w in caught)
    assert fallback == run_cells(_grid(), jobs=1)


# -- the Sweep facade --------------------------------------------------------


def _sweep(jobs=1) -> Sweep:
    return Sweep(
        dimensions={"fraction": [0.06, 0.10]},
        config_factory=lambda fraction: scaled_reference_config(
            DB_PAGES, cache_fraction=fraction, policy=CachePolicy.FACE
        ),
        scale=TINY,
        measure_transactions=FAST["measure_transactions"],
        warmup_min=FAST["warmup_min"],
        warmup_max=FAST["warmup_max"],
        jobs=jobs,
    )


def test_sweep_lambda_factory_parallelises():
    # The factory is a lambda (unpicklable) but runs in the parent; only
    # the configs it *produces* cross the process boundary.
    serial = _sweep(jobs=1).run()
    parallel = _sweep(jobs=2).run()
    assert serial.cells == parallel.cells
    assert list(serial.cells) == list(parallel.cells)


def test_sweep_run_jobs_overrides_constructor():
    sweep = _sweep(jobs=1)
    assert sweep.run(jobs=2).cells == sweep.run(jobs=1).cells


def test_sweep_from_cells():
    cells = [_spec(("face", f), f) for f in (0.06, 0.10)]
    sweep = Sweep.from_cells(cells, dimensions=("policy", "fraction"))
    results = sweep.run()
    assert list(results.cells) == [("face", 0.06), ("face", 0.10)]
    direct = run_cells(cells, jobs=1)
    assert results.cells == direct
