"""Crash recovery: durability and atomicity across every cache policy."""

import pytest

from repro.core.config import CachePolicy
from repro.recovery.restart import RecoveryManager, crash_and_restart
from tests.conftest import kv_dbms_with, kv_read, kv_write

ALL_POLICIES = [
    CachePolicy.NONE,
    CachePolicy.FACE,
    CachePolicy.FACE_GR,
    CachePolicy.FACE_GSC,
    CachePolicy.LC,
    CachePolicy.TAC,
    CachePolicy.EXADATA,
]


@pytest.mark.parametrize("policy", ALL_POLICIES)
class TestDurabilityAcrossPolicies:
    """Invariant 4 of DESIGN.md: committed updates survive a crash and
    uncommitted ones are rolled back — under every cache policy."""

    def test_committed_update_survives_crash(self, policy):
        dbms = kv_dbms_with(policy)
        kv_write(dbms, 5, "committed")
        crash_and_restart(dbms)
        assert kv_read(dbms, 5) == (5, "committed")

    def test_committed_update_survives_even_after_eviction(self, policy):
        dbms = kv_dbms_with(policy)
        kv_write(dbms, 5, "evicted-later")
        for k in range(8, 60):  # push the dirty page out of DRAM
            kv_read(dbms, k)
        crash_and_restart(dbms)
        assert kv_read(dbms, 5) == (5, "evicted-later")

    def test_uncommitted_update_rolled_back(self, policy):
        dbms = kv_dbms_with(policy)
        kv_write(dbms, 5, "never-committed", commit=False)
        # Force the dirty page out so it reaches a non-volatile tier.
        for k in range(8, 60):
            kv_read(dbms, k)
        crash_and_restart(dbms)
        assert kv_read(dbms, 5) == (5, "v5")

    def test_unforced_uncommitted_update_vanishes(self, policy):
        dbms = kv_dbms_with(policy)
        kv_write(dbms, 5, "volatile", commit=False)  # still only in DRAM+tail
        crash_and_restart(dbms)
        assert kv_read(dbms, 5) == (5, "v5")

    def test_updates_across_checkpoint_survive(self, policy):
        dbms = kv_dbms_with(policy)
        kv_write(dbms, 1, "before-ckpt")
        dbms.checkpoint()
        kv_write(dbms, 2, "after-ckpt")
        crash_and_restart(dbms)
        assert kv_read(dbms, 1) == (1, "before-ckpt")
        assert kv_read(dbms, 2) == (2, "after-ckpt")

    def test_loser_spanning_checkpoint_is_undone(self, policy):
        dbms = kv_dbms_with(policy)
        tx = kv_write(dbms, 5, "spanning-loser", commit=False)
        dbms.checkpoint()  # tx is active at checkpoint time
        kv_write(dbms, 6, "winner")
        report = crash_and_restart(dbms)
        assert report.losers == 1
        assert kv_read(dbms, 5) == (5, "v5")
        assert kv_read(dbms, 6) == (6, "winner")

    def test_repeated_updates_keep_only_newest(self, policy):
        dbms = kv_dbms_with(policy)
        for version in range(5):
            kv_write(dbms, 7, f"version{version}")
            for k in range(8, 40):  # churn to stack versions in the cache
                kv_read(dbms, k)
        crash_and_restart(dbms)
        assert kv_read(dbms, 7) == (7, "version4")


class TestRestartReport:
    def test_redo_skips_already_persistent_pages(self):
        dbms = kv_dbms_with(CachePolicy.FACE)
        kv_write(dbms, 1, "x")
        dbms.checkpoint()
        report = crash_and_restart(dbms)
        assert report.redo_applied == 0  # checkpoint made everything durable

    def test_redo_applies_missing_updates(self):
        dbms = kv_dbms_with(CachePolicy.FACE)
        dbms.checkpoint()
        kv_write(dbms, 1, "after")
        report = crash_and_restart(dbms)
        # The first post-checkpoint update of a page ships a full-page
        # image; redo restores via the image (or applies, for any record
        # that follows one).
        assert report.fpw_installed + report.redo_applied >= 1

    def test_face_recovery_reads_mostly_from_flash(self):
        dbms = kv_dbms_with(CachePolicy.FACE_GSC)
        for k in range(40):
            kv_write(dbms, k, f"w{k}")
        dbms.checkpoint()
        for round_ in range(3):  # several updates per page: FPW only covers
            for k in range(40):  # the first; later redo records must fetch
                kv_write(dbms, k, f"w{round_}-{k}")
        report = crash_and_restart(dbms)
        assert report.cache_survived
        total_fetches = report.pages_from_flash + report.pages_from_disk
        if total_fetches:
            assert report.flash_read_fraction > 0.5

    def test_hdd_recovery_reads_only_from_disk(self):
        dbms = kv_dbms_with(CachePolicy.NONE)
        kv_write(dbms, 1, "x")
        dbms.checkpoint()
        kv_write(dbms, 2, "y")
        report = crash_and_restart(dbms)
        assert report.pages_from_flash == 0

    def test_face_restart_faster_than_hdd_restart(self):
        def run(policy):
            dbms = kv_dbms_with(policy, buffer_pages=8)
            for round_ in range(3):
                for k in range(64):
                    kv_write(dbms, k, f"r{round_}-{k}")
                if round_ == 0:
                    dbms.checkpoint()
            return crash_and_restart(dbms).total_time

        assert run(CachePolicy.FACE_GSC) < run(CachePolicy.NONE)

    def test_metadata_restore_time_reported_for_face(self):
        dbms = kv_dbms_with(CachePolicy.FACE)
        for k in range(30):
            kv_write(dbms, k, "x")
        report = crash_and_restart(dbms)
        assert report.metadata_restore_time > 0

    def test_phase_times_cover_all_phases(self):
        dbms = kv_dbms_with(CachePolicy.FACE)
        kv_write(dbms, 1, "x")
        report = crash_and_restart(dbms)
        assert set(report.phase_times) == {
            "metadata", "analysis", "redo", "undo", "checkpoint",
        }
        assert report.total_time == pytest.approx(
            sum(report.phase_times.values()), rel=1e-6
        )

    def test_end_of_recovery_checkpoint_taken(self):
        dbms = kv_dbms_with(CachePolicy.FACE)
        kv_write(dbms, 1, "x")
        before = dbms.checkpoints
        crash_and_restart(dbms)
        assert dbms.checkpoints == before + 1

    def test_system_usable_after_restart(self):
        dbms = kv_dbms_with(CachePolicy.FACE_GSC)
        kv_write(dbms, 1, "pre-crash")
        crash_and_restart(dbms)
        kv_write(dbms, 2, "post-crash")
        assert kv_read(dbms, 2) == (2, "post-crash")
        # And it can crash and recover again.
        crash_and_restart(dbms)
        assert kv_read(dbms, 1) == (1, "pre-crash")
        assert kv_read(dbms, 2) == (2, "post-crash")

    def test_double_crash_idempotent_redo(self):
        dbms = kv_dbms_with(CachePolicy.FACE)
        kv_write(dbms, 3, "stable")
        crash_and_restart(dbms)
        report = crash_and_restart(dbms)
        assert kv_read(dbms, 3) == (3, "stable")
        assert report.losers == 0

    def test_recovery_manager_direct_use(self):
        dbms = kv_dbms_with(CachePolicy.FACE)
        kv_write(dbms, 1, "x")
        dbms.crash()
        report = RecoveryManager(dbms).restart()
        assert report.total_time > 0
