"""Closed-loop service layer: DES mechanics, percentile math, determinism.

Three layers of pinning:

* **Hand-computed DES schedules** — tiny synthetic demand streams whose
  FIFO/think/admission timelines can be worked out on paper; the simulator
  must land on those exact numbers (floats stay exact: the inputs are
  halves and units).
* **Percentile edge cases** — empty, single-sample, merged-across-workers
  histograms, and the q=0 rank floor.
* **Engine integration** — a real 50-client cell is bit-identical across
  ``jobs=1`` vs ``jobs=2``, full execution vs trace replay, and re-runs.
"""

import dataclasses
import pickle

import pytest

from repro.errors import ConfigError
from repro.obs import OBS
from repro.obs.registry import HistogramSnapshot
from repro.sim.experiment import ExperimentConfig
from repro.sim.parallel import CellSpec, run_cell, run_cells
from repro.sim.scenario import ServiceScenario
from repro.sim.service import (
    RESOURCE_ORDER,
    SERVICE_LATENCY_BUCKETS,
    ServiceResult,
    ServiceSimulation,
    TxnDemand,
    record_demands,
)
from repro.tpcc.scale import TINY


def demand(*stages, committed=True, new_order=False) -> TxnDemand:
    return TxnDemand(
        stages=tuple(stages), committed=committed, new_order_commit=new_order
    )


def simulate(demands, n_clients, think=0.0, max_inflight=None) -> ServiceResult:
    sim = ServiceSimulation(
        demands, n_clients, think_time_seconds=think, max_inflight=max_inflight
    ).run()
    return sim.result(name="synthetic")


# ---------------------------------------------------------------------------
# hand-computed DES schedules
# ---------------------------------------------------------------------------


class TestSimulationMechanics:
    def test_single_client_serialises_demands(self):
        # One client, two 1 s transactions: no queueing anywhere, so each
        # latency is its service demand and the run lasts their sum.
        r = simulate([demand(("disk", 1.0))] * 2, n_clients=1)
        assert r.transactions == 2
        assert r.sim_seconds == 2.0
        assert r.latency_mean == 1.0
        assert r.latency_max == 1.0
        assert r.tps == 1.0

    def test_two_clients_queue_fifo_on_one_resource(self):
        # Two clients, four 1 s disk-only transactions.  Worked timeline:
        # A: [0,1), resubmits -> [2,3); B: waits A -> [1,2), then [3,4).
        # Every transaction after the first waits exactly one service time.
        r = simulate([demand(("disk", 1.0))] * 4, n_clients=2)
        assert r.sim_seconds == 4.0
        assert r.latency_max == 2.0
        # latencies: 1, 2, 2, 2 (first admission is unqueued)
        assert r.latency_mean == pytest.approx(7.0 / 4.0)
        assert r.utilization == {"disk": 1.0}
        # 3 of 4 visits waited 1 s each behind the busy server.
        assert r.queue_wait_mean["disk"] == pytest.approx(3.0 / 4.0)

    def test_stages_pipeline_across_resources(self):
        # Two clients, cpu -> disk, 1 s each stage.  B's cpu stage overlaps
        # A's disk stage, so the makespan is 3 s, not 4.
        stream = [demand(("cpu", 1.0), ("disk", 1.0))] * 2
        r = simulate(stream, n_clients=2)
        assert r.sim_seconds == 3.0
        assert r.latency_max == 3.0  # B: submit 0, cpu [1,2), disk [2,3)
        assert r.latency_mean == pytest.approx((2.0 + 3.0) / 2.0)
        assert r.utilization == {"cpu": 2.0 / 3.0, "disk": 2.0 / 3.0}

    def test_think_time_idles_between_transactions(self):
        # One client, 0.5 s think between two 1 s transactions: the gap
        # stretches the run but never the per-transaction latency.
        r = simulate([demand(("disk", 1.0))] * 2, n_clients=1, think=0.5)
        assert r.sim_seconds == 2.5
        assert r.latency_mean == 1.0
        assert r.think_time_ms == 500.0
        assert r.utilization["disk"] == pytest.approx(1.0 / 1.25)

    def test_admission_control_caps_inflight(self):
        # Two clients but max_inflight=1: strictly serial execution, and
        # the gated client's wait is charged to admission, not the queue.
        r = simulate([demand(("disk", 1.0))] * 2, n_clients=2, max_inflight=1)
        assert r.sim_seconds == 2.0
        assert r.latency_max == 2.0  # B: submitted at 0, admitted at 1
        assert r.queue_wait_mean["disk"] == 0.0
        assert r.admission_wait_mean == pytest.approx(0.5)
        assert r.max_inflight == 1

    def test_admission_gate_is_fifo(self):
        # Three clients, cap 1: the gate releases in submission order, so
        # latencies are exactly 1, 2, 3 (mean 2).
        r = simulate([demand(("disk", 1.0))] * 3, n_clients=3, max_inflight=1)
        assert r.latency_mean == pytest.approx(2.0)
        assert r.latency_max == 3.0

    def test_more_clients_than_demands(self):
        # Extra clients idle out harmlessly once the stream is exhausted.
        r = simulate([demand(("cpu", 1.0))], n_clients=8)
        assert r.transactions == 1
        assert r.sim_seconds == 1.0

    def test_zero_demand_transaction_completes_instantly(self):
        r = simulate([demand(), demand(("cpu", 1.0))], n_clients=1)
        assert r.transactions == 2
        assert r.sim_seconds == 1.0

    def test_commit_and_neworder_accounting(self):
        stream = [
            demand(("cpu", 1.0), new_order=True),
            demand(("cpu", 1.0), committed=False),
            demand(("cpu", 1.0)),
        ]
        r = simulate(stream, n_clients=1)
        # tpmC counts only new-order commits: 1 in 3 simulated seconds.
        assert r.tpmc == pytest.approx(60.0 / 3.0)
        assert r.tps == pytest.approx(1.0)

    def test_throughput_saturates_and_tail_grows_with_clients(self):
        # The knee in miniature: a 10 ms bottleneck caps throughput at
        # 100 tx/s no matter the client count, while p95 keeps climbing.
        stream = [demand(("disk", 0.010))] * 200
        by_clients = {n: simulate(stream, n_clients=n) for n in (1, 4, 32)}
        assert by_clients[1].tps == pytest.approx(100.0)
        assert by_clients[32].tps == pytest.approx(100.0)
        assert (
            by_clients[1].p95_seconds
            < by_clients[4].p95_seconds
            < by_clients[32].p95_seconds
        )

    def test_validation(self):
        with pytest.raises(ConfigError):
            ServiceSimulation([demand()], n_clients=0)
        with pytest.raises(ConfigError):
            ServiceSimulation([demand()], n_clients=1, think_time_seconds=-1.0)
        with pytest.raises(ConfigError):
            ServiceSimulation([demand()], n_clients=1, max_inflight=0)
        with pytest.raises(ConfigError):
            ServiceScenario(n_clients=0)
        with pytest.raises(ConfigError):
            ServiceScenario(think_time_ms=-0.5)
        with pytest.raises(ConfigError):
            ExperimentConfig(scenario="service", n_clients=0)

    def test_result_is_picklable(self):
        r = simulate([demand(("cpu", 1.0))] * 3, n_clients=2)
        clone = pickle.loads(pickle.dumps(r))
        assert clone == r
        assert clone.p95_seconds == r.p95_seconds


# ---------------------------------------------------------------------------
# percentile math
# ---------------------------------------------------------------------------


def snapshot(samples, bounds=(1.0, 2.0, 4.0)) -> HistogramSnapshot:
    from repro.obs.registry import Histogram

    h = Histogram("test", bounds)
    for s in samples:
        h.observe(s)
    return HistogramSnapshot(
        bounds=h.bounds, counts=tuple(h.counts), total=h.total, count=h.count
    )


class TestQuantileEdgeCases:
    def test_empty_histogram_is_zero(self):
        empty = snapshot([])
        assert empty.quantile(0.0) == 0.0
        assert empty.quantile(0.5) == 0.0
        assert empty.quantile(1.0) == 0.0

    def test_single_sample_every_quantile_is_its_bucket(self):
        one = snapshot([1.5])  # lands in the (1, 2] bucket
        for q in (0.0, 0.5, 0.95, 1.0):
            assert one.quantile(q) == 2.0

    def test_q0_skips_empty_leading_buckets(self):
        # All samples above the first bound: q=0 must report the first
        # *non-empty* bucket, not bounds[0].
        high = snapshot([3.0, 3.5])
        assert high.quantile(0.0) == 4.0

    def test_quantiles_walk_the_distribution(self):
        s = snapshot([0.5] * 50 + [1.5] * 45 + [3.0] * 5)
        assert s.quantile(0.50) == 1.0
        assert s.quantile(0.95) == 2.0
        assert s.quantile(0.99) == 4.0

    def test_overflow_bucket_is_inf(self):
        s = snapshot([10.0])
        assert s.quantile(0.99) == float("inf")

    def test_merge_across_workers_answers_combined_population(self):
        # Two "worker" snapshots; the merged quantile must equal a single
        # histogram over the concatenated samples.
        a, b = [0.5] * 90 + [1.5] * 10, [3.0] * 100
        merged = snapshot(a).merge(snapshot(b))
        combined = snapshot(a + b)
        assert merged.counts == combined.counts
        assert merged.count == 200
        for q in (0.0, 0.45, 0.5, 0.95, 1.0):
            assert merged.quantile(q) == combined.quantile(q)

    def test_out_of_range_quantile_raises(self):
        s = snapshot([0.5])
        with pytest.raises(ConfigError):
            s.quantile(-0.1)
        with pytest.raises(ConfigError):
            s.quantile(1.1)

    def test_service_buckets_cover_the_latency_range(self):
        assert SERVICE_LATENCY_BUCKETS[0] <= 50e-6  # one flash read
        assert SERVICE_LATENCY_BUCKETS[-1] >= 600.0  # deep saturation
        # Geometric spacing bounds quantile error to one bucket ratio.
        ratios = [
            b / a
            for a, b in zip(SERVICE_LATENCY_BUCKETS, SERVICE_LATENCY_BUCKETS[1:])
        ]
        assert max(ratios) <= 1.1501


# ---------------------------------------------------------------------------
# demand recording + engine integration
# ---------------------------------------------------------------------------


def service_config(**overrides) -> ExperimentConfig:
    params = dict(
        scale=TINY,
        scenario="service",
        n_clients=50,
        measure_transactions=300,
        warmup_min=50,
        warmup_max=2000,
    )
    params.update(overrides)
    return ExperimentConfig(**params)


def comparable(result):
    data = dataclasses.asdict(result)
    data.pop("obs")
    return data


class TestServiceCells:
    def test_record_demands_conserves_busy_time(self):
        from repro.sim.runner import ExperimentRunner

        config = service_config()
        runner = ExperimentRunner(config.system_config(), TINY, seed=config.seed)
        runner.warm_up(50, 2000)
        before = runner.dbms.resource_times()
        demands = record_demands(runner, 200)
        after = runner.dbms.resource_times()
        assert len(demands) == 200
        for name in RESOURCE_ORDER:
            recorded = sum(
                dict(d.stages).get(name, 0.0) for d in demands
            )
            assert recorded == pytest.approx(after[name] - before[name])
        # Stage order is canonical on every demand.
        for d in demands:
            names = [name for name, _ in d.stages]
            assert names == [n for n in RESOURCE_ORDER if n in names]

    def test_reference_50_client_cell(self):
        # The acceptance-criteria run: 50 closed-loop clients, fixed seed,
        # deterministic p50/p95/p99 — and a sane latency ordering.
        spec = CellSpec.from_config(("face+gsc", 50), service_config())
        a = run_cell(spec)
        b = run_cell(spec)
        assert isinstance(a, ServiceResult)
        assert comparable(a) == comparable(b)
        assert a.transactions == 300
        assert 0.0 < a.p50_seconds <= a.p95_seconds <= a.p99_seconds
        assert a.bottleneck in a.utilization

    def test_jobs_parallelism_is_bit_identical(self):
        base = service_config(measure_transactions=200)
        specs = [
            CellSpec.from_config((policy, n), base.with_(policy=policy, n_clients=n))
            for policy in ("face+gsc", "lc")
            for n in (1, 16)
        ]
        serial = run_cells(specs, jobs=1)
        parallel = run_cells(specs, jobs=2)
        for key in serial:
            assert comparable(serial[key]) == comparable(parallel[key]), key
            quantiles = lambda r: (r.p50_seconds, r.p95_seconds, r.p99_seconds)
            assert quantiles(serial[key]) == quantiles(parallel[key])

    def test_fast_replay_matches_full_execution(self):
        base = service_config(measure_transactions=200)
        specs = [
            CellSpec.from_config((policy,), base.with_(policy=policy))
            for policy in ("face+gsc", "lc")
        ]
        full = {spec.key: run_cell(spec) for spec in specs}
        fast = run_cells(specs, jobs=1, fast=True)
        for key in full:
            assert comparable(full[key]) == comparable(fast[key]), key

    def test_collect_obs_snapshot_carries_service_metrics(self):
        spec = CellSpec.from_config(
            ("obs",), service_config(measure_transactions=150, collect_obs=True)
        )
        was_enabled = OBS.enabled
        result = run_cell(spec)
        assert OBS.enabled == was_enabled
        assert result.obs is not None
        flat = result.obs.as_flat()
        assert flat["service.txn.completed"] == 150
        assert flat["service.clients"] == 50
        hist = result.obs.histograms["service.txn.latency.seconds"]
        assert hist.count == 150
        # The obs-mirrored histogram is the same distribution the result
        # embeds, so both answer identical quantiles.
        assert hist.quantile(0.95) == result.p95_seconds

    def test_think_time_knob_reaches_the_simulation(self):
        eager = run_cell(CellSpec.from_config(("t0",), service_config(
            measure_transactions=150, n_clients=4)))
        lazy = run_cell(CellSpec.from_config(("t5",), service_config(
            measure_transactions=150, n_clients=4, think_time_ms=5.0)))
        assert lazy.think_time_ms == 5.0
        assert lazy.sim_seconds > eager.sim_seconds
        assert lazy.tps < eager.tps

    def test_max_inflight_knob_reaches_the_simulation(self):
        open_door = run_cell(CellSpec.from_config(("open",), service_config(
            measure_transactions=150)))
        gated = run_cell(CellSpec.from_config(("gated",), service_config(
            measure_transactions=150, max_inflight=2)))
        assert gated.max_inflight == 2
        assert gated.admission_wait_mean > 0.0
        assert open_door.admission_wait_mean == 0.0

    def test_ablation_grid_over_client_counts(self):
        from repro.sim.ablation import AblationStudy

        study = AblationStudy(
            service_config(measure_transactions=150),
            {"policy": ("face+gsc", "lc"), "n_clients": (1, 16)},
        )
        results = study.run(jobs=1, fast=True)
        assert results.is_service and not results.is_crash
        assert results.default_metrics == ("tpmc", "p95_seconds", "p99_seconds")
        record = results.to_record()
        assert record["n_cells"] == 4
        for cell in record["cells"]:
            assert {"n_clients", "tpmc", "p50_ms", "p95_ms", "p99_ms"} <= set(cell)
        # Marginal tail latency must grow with the client count.
        marginals = dict(
            (value, mean)
            for value, mean, _, _, _ in results.sensitivity("n_clients", "p95_seconds")
        )
        assert marginals[16] > marginals[1]
