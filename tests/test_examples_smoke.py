"""Smoke tests: every example script must import and expose a main().

The examples are runnable end to end (they drive BENCH-scale workloads, so
full runs live outside the unit suite); here we verify they stay importable
and structurally intact, and we execute the one fast example completely.
"""

from __future__ import annotations

import importlib.util
import pathlib
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


def load_module(path: pathlib.Path):
    spec = importlib.util.spec_from_file_location(f"example_{path.stem}", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


def test_examples_directory_has_at_least_three_scripts():
    assert len(EXAMPLES) >= 3


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.stem)
def test_example_imports_and_has_main(path):
    module = load_module(path)
    assert callable(getattr(module, "main", None)), f"{path.stem} lacks main()"
    assert module.__doc__, f"{path.stem} lacks a module docstring"


def test_custom_engine_example_runs_end_to_end(capsys):
    module = load_module(EXAMPLES_DIR / "custom_engine_usage.py")
    module.main()
    out = capsys.readouterr().out
    assert "money conserved across the crash" in out
