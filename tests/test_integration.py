"""End-to-end integration: TPC-C workload + crash recovery consistency.

Checks the TPC-C consistency conditions (specification clause 3.3) hold
after a workload run, and continue to hold after a crash + restart under
the FaCE policies — the full-system version of the durability invariant.
"""

from __future__ import annotations

import pytest

from repro.core.config import CachePolicy
from repro.core.dbms import SimulatedDBMS
from repro.recovery.restart import crash_and_restart
from repro.tpcc.driver import TpccDriver
from repro.tpcc.loader import TpccDatabase, load_tpcc
from repro.tpcc.scale import TINY
from tests.conftest import tiny_config


def build(policy: CachePolicy) -> TpccDriver:
    dbms = SimulatedDBMS(
        tiny_config(policy, disk_capacity_pages=8192, cache_pages=96,
                    buffer_pages=12)
    )
    return TpccDriver(load_tpcc(dbms, TINY, seed=5), seed=21)


def check_consistency(database: TpccDatabase) -> None:
    """TPC-C clause 3.3.2.1-2: D_NEXT_O_ID chains and order counts."""
    dbms = database.dbms
    scale = database.scale
    for w in range(1, scale.warehouses + 1):
        for d in range(1, scale.districts_per_warehouse + 1):
            d_row = dbms.fetch_row("district", database.district_rid(w, d))
            next_o_id = d_row[10]
            # The most recent order id must be next_o_id - 1 and present.
            newest = dbms.index_lookup("order_pk", (w, d, next_o_id - 1))
            assert newest is not None, f"missing newest order in ({w},{d})"
            assert dbms.index_lookup("order_pk", (w, d, next_o_id)) is None
            # Every undelivered order id has a NEW-ORDER row and vice versa.
            for o_id in database.undelivered[(w, d)]:
                assert dbms.index_lookup("new_order_pk", (w, d, o_id)) is not None


@pytest.mark.parametrize(
    "policy",
    [CachePolicy.FACE_GSC, CachePolicy.FACE, CachePolicy.LC, CachePolicy.NONE],
)
def test_workload_preserves_consistency(policy):
    driver = build(policy)
    driver.run(300)
    check_consistency(driver.database)
    assert driver.stats.committed > 250


@pytest.mark.parametrize("policy", [CachePolicy.FACE_GSC, CachePolicy.FACE])
def test_consistency_survives_crash_mid_workload(policy):
    driver = build(policy)
    driver.run(150)
    driver.database.dbms.checkpoint()
    driver.run(150)
    report = crash_and_restart(driver.database.dbms)
    check_consistency(driver.database)
    assert report.total_time > 0
    # The system keeps working after restart.
    driver.run(100)
    check_consistency(driver.database)


def test_multiple_crashes_interleaved_with_workload():
    driver = build(CachePolicy.FACE_GSC)
    for round_ in range(3):
        driver.run(120)
        crash_and_restart(driver.database.dbms)
        check_consistency(driver.database)


def test_warehouse_ytd_equals_district_ytd_sum():
    """TPC-C consistency condition 1: W_YTD = sum(D_YTD)."""
    driver = build(CachePolicy.FACE_GSC)
    driver.run(400)
    dbms, database = driver.database.dbms, driver.database
    for w in range(1, TINY.warehouses + 1):
        w_ytd = dbms.fetch_row("warehouse", database.warehouse_rid(w))[8]
        d_sum = sum(
            dbms.fetch_row("district", database.district_rid(w, d))[9]
            for d in range(1, TINY.districts_per_warehouse + 1)
        )
        initial_w, initial_d = 300_000.0, 30_000.0 * TINY.districts_per_warehouse
        assert w_ytd - initial_w == pytest.approx(d_sum - initial_d, rel=1e-9)


def test_face_outperforms_hdd_only_even_at_tiny_scale():
    """Smoke-level shape check: with a warm cache, FaCE+GSC must beat the
    no-cache configuration on the same workload and seed."""
    results = {}
    for policy in (CachePolicy.FACE_GSC, CachePolicy.NONE):
        driver = build(policy)
        driver.run(200)  # warm-up
        driver.database.dbms.reset_measurements()
        driver.stats.reset()
        driver.run(300)
        wall = driver.database.dbms.wall_clock()
        results[policy] = driver.tpmc(wall)
    assert results[CachePolicy.FACE_GSC] > results[CachePolicy.NONE]
