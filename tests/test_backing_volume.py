"""PageStore semantics and the Volume timed-access wrapper."""

import pytest

from repro.errors import OutOfRangeError, PageNotFoundError
from repro.storage.backing import PageStore
from repro.storage.device import Device, IOKind
from repro.storage.profiles import MLC_SAMSUNG_470
from repro.storage.volume import Volume


class TestPageStore:
    def test_put_get_roundtrip(self):
        store = PageStore(10)
        store.put(3, "image-a")
        assert store.get(3) == "image-a"

    def test_put_replaces(self):
        store = PageStore(10)
        store.put(3, "old")
        store.put(3, "new")
        assert store.get(3) == "new"

    def test_get_empty_slot_raises(self):
        store = PageStore(10)
        with pytest.raises(PageNotFoundError):
            store.get(0)

    def test_peek_empty_slot_returns_none(self):
        assert PageStore(10).peek(5) is None

    def test_delete_is_idempotent(self):
        store = PageStore(10)
        store.put(1, "x")
        store.delete(1)
        store.delete(1)
        assert 1 not in store

    def test_bounds_checked(self):
        store = PageStore(10)
        for bad in (-1, 10, 999):
            with pytest.raises(OutOfRangeError):
                store.put(bad, "x")
            with pytest.raises(OutOfRangeError):
                store.peek(bad)

    def test_len_contains_occupied_clear(self):
        store = PageStore(10)
        store.put(1, "a")
        store.put(7, "b")
        assert len(store) == 2
        assert set(store.occupied()) == {1, 7}
        store.clear()
        assert len(store) == 0

    def test_zero_capacity_rejected(self):
        with pytest.raises(OutOfRangeError):
            PageStore(0)


class TestVolume:
    @pytest.fixture
    def vol(self) -> Volume:
        return Volume(Device(MLC_SAMSUNG_470, 100))

    def test_write_then_read_page_charges_device(self, vol):
        vol.write_page(5, "img")
        busy = vol.busy_time
        assert busy > 0
        assert vol.read_page(5) == "img"
        assert vol.busy_time > busy

    def test_peek_is_untimed(self, vol):
        vol.write_page(5, "img")
        busy = vol.busy_time
        assert vol.peek(5) == "img"
        assert vol.busy_time == busy

    def test_batch_roundtrip_is_single_op(self, vol):
        vol.write_batch(10, ["a", "b", "c"])
        assert vol.device.stats.ops[IOKind.SEQ_WRITE] == 1
        assert vol.read_batch(10, 3) == ["a", "b", "c"]
        assert vol.device.stats.ops[IOKind.SEQ_READ] == 1

    def test_batch_read_of_unwritten_slots_yields_none(self, vol):
        vol.write_page(11, "only")
        assert vol.read_batch(10, 3) == [None, "only", None]

    def test_store_cannot_exceed_device(self):
        from repro.storage.backing import PageStore

        with pytest.raises(OutOfRangeError):
            Volume(Device(MLC_SAMSUNG_470, 10), PageStore(20))

    def test_capacity_property(self, vol):
        assert vol.capacity_pages == 100
