"""System configuration and the policy/device factory."""

import pytest

from repro.core.config import CachePolicy, SystemConfig, scaled_reference_config
from repro.core.policies import (
    build_cache,
    build_database_device,
    build_flash_volume,
    build_log_device,
)
from repro.errors import ConfigError
from repro.flashcache.exadata import ExadataStyleCache
from repro.flashcache.group import GroupReplacementCache, GroupSecondChanceCache
from repro.flashcache.lc import LazyCleaningCache
from repro.flashcache.mvfifo import MvFifoCache
from repro.flashcache.null import NullFlashCache
from repro.flashcache.tac import TacCache
from repro.storage.raid import Raid0Array
from repro.storage.ssd import FlashDevice
from repro.storage.volume import Volume
from tests.conftest import tiny_config


class TestConfig:
    def test_defaults_are_valid(self):
        SystemConfig()

    def test_validation(self):
        with pytest.raises(ConfigError):
            SystemConfig(buffer_pages=0)
        with pytest.raises(ConfigError):
            SystemConfig(cache_pages=0, cache_policy=CachePolicy.FACE)
        with pytest.raises(ConfigError):
            SystemConfig(n_disks=0)
        with pytest.raises(ConfigError):
            SystemConfig(segment_entries=0)

    def test_hdd_only_needs_no_cache_pages(self):
        SystemConfig(cache_policy=CachePolicy.NONE, cache_pages=0)

    def test_display_names(self):
        assert SystemConfig(cache_policy=CachePolicy.LC).display_name == "LC"
        assert SystemConfig(cache_policy=CachePolicy.NONE).display_name == "HDD-only"
        assert SystemConfig(ssd_only=True).display_name == "SSD-only"
        assert SystemConfig(label="custom").display_name == "custom"

    def test_with_returns_modified_copy(self):
        base = SystemConfig()
        changed = base.with_(buffer_pages=99)
        assert changed.buffer_pages == 99
        assert base.buffer_pages != 99

    def test_uses_flash_property(self):
        assert not CachePolicy.NONE.uses_flash
        assert CachePolicy.FACE_GSC.uses_flash


class TestScaledReference:
    def test_ratios_follow_the_paper(self):
        cfg = scaled_reference_config(db_pages=100_000)
        assert cfg.buffer_pages == 400  # 0.4% of the database
        assert cfg.cache_pages == 12_000  # 12% default
        assert cfg.disk_capacity_pages >= 200_000

    def test_segments_scale_with_cache(self):
        cfg = scaled_reference_config(db_pages=100_000)
        assert cfg.segment_entries == cfg.cache_pages // 16

    def test_minimums_enforced(self):
        cfg = scaled_reference_config(db_pages=1000)
        assert cfg.buffer_pages >= 64
        assert cfg.cache_pages >= 256

    def test_invalid_db_pages(self):
        with pytest.raises(ConfigError):
            scaled_reference_config(0)

    def test_overrides_pass_through(self):
        cfg = scaled_reference_config(10_000, n_disks=16, scan_depth=128)
        assert cfg.n_disks == 16
        assert cfg.scan_depth == 128


class TestFactory:
    POLICY_TYPES = [
        (CachePolicy.NONE, NullFlashCache),
        (CachePolicy.FACE, MvFifoCache),
        (CachePolicy.FACE_GR, GroupReplacementCache),
        (CachePolicy.FACE_GSC, GroupSecondChanceCache),
        (CachePolicy.LC, LazyCleaningCache),
        (CachePolicy.TAC, TacCache),
        (CachePolicy.EXADATA, ExadataStyleCache),
    ]

    @pytest.mark.parametrize("policy,cls", POLICY_TYPES)
    def test_policy_maps_to_cache_class(self, policy, cls):
        cfg = tiny_config(policy)
        flash = build_flash_volume(cfg)
        disk = Volume(build_database_device(cfg))
        cache = build_cache(cfg, flash, disk)
        assert isinstance(cache, cls)

    def test_database_device_is_raid(self):
        cfg = tiny_config(n_disks=4)
        device = build_database_device(cfg)
        assert isinstance(device, Raid0Array)
        assert device.n_disks == 4

    def test_ssd_only_database_on_flash(self):
        cfg = tiny_config(CachePolicy.NONE, ssd_only=True)
        assert isinstance(build_database_device(cfg), FlashDevice)
        assert build_flash_volume(cfg) is None
        disk = Volume(build_database_device(cfg))
        assert isinstance(build_cache(cfg, None, disk), NullFlashCache)

    def test_flash_volume_has_metadata_headroom(self):
        cfg = tiny_config(CachePolicy.FACE)
        flash = build_flash_volume(cfg)
        assert flash.capacity_pages > cfg.cache_pages

    def test_no_flash_volume_for_hdd_only(self):
        assert build_flash_volume(tiny_config(CachePolicy.NONE)) is None

    def test_flash_policy_without_volume_rejected(self):
        cfg = tiny_config(CachePolicy.FACE)
        disk = Volume(build_database_device(cfg))
        with pytest.raises(ConfigError):
            build_cache(cfg, None, disk)

    def test_log_device_capacity(self):
        cfg = tiny_config()
        assert build_log_device(cfg).capacity_pages == cfg.log_capacity_pages
