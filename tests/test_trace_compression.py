"""Compressed boundary-trace codec: bit-exact round trips and corruption.

The persistent trace cache stores boundary streams in the ``BTC1`` wire
format (:mod:`repro.sim.trace`): run-length-encoded opcodes, zigzag-varint
page-id deltas, then deflate.  Replay correctness rides on two properties
these tests pin:

* **losslessness** — ``decode_boundary(encode_boundary(ops, args))``
  reconstructs both arrays verbatim, for every opcode kind, run shape,
  delta sign/magnitude and payload value the recorder can produce;
* **fail-closed corruption handling** — any malformed input raises
  :class:`~repro.errors.TraceCodecError` (never garbage arrays), so the
  cache loader treats a damaged file as absent.

A final test records a real TINY workload and checks the compression
ratio clears the acceptance floor (>= 3x over the raw array encoding)
while the persisted file round-trips through the cache loader bit-exactly.
"""

from __future__ import annotations

import json
import zlib
from array import array

import pytest

from repro.errors import TraceCodecError
from repro.sim.trace import (
    OP_ABORT,
    OP_BEGIN,
    OP_COMMIT,
    OP_READ,
    OP_READ_DUP,
    OP_TXEND,
    OP_UPDATE,
    PAYLOAD_BITS,
    PAYLOAD_MASK,
    boundary_checksum,
    decode_boundary,
    encode_boundary,
    raw_boundary_bytes,
)


def _stream(events):
    """Build (ops, args) arrays from [(op, operand-or-None), ...]."""
    ops = array("B", [op for op, _ in events])
    args = array("q", [arg for _, arg in events if arg is not None])
    return ops, args


def _round_trip(ops, args):
    blob = encode_boundary(ops, args)
    decoded_ops, decoded_args = decode_boundary(blob)
    assert decoded_ops == ops
    assert decoded_args == args
    assert decoded_ops.typecode == "B" and decoded_args.typecode == "q"
    assert boundary_checksum(decoded_ops, decoded_args) == boundary_checksum(
        ops, args
    )
    return blob


def _update(page, payload):
    return (page << PAYLOAD_BITS) | payload


class TestRoundTrip:
    def test_empty_stream(self):
        _round_trip(array("B"), array("q"))

    def test_every_opcode_kind(self):
        ops, args = _stream([
            (OP_BEGIN, None),
            (OP_READ, 7),
            (OP_READ_DUP, None),
            (OP_UPDATE, _update(9, 130)),
            (OP_COMMIT, None),
            (OP_TXEND, 3),
            (OP_BEGIN, None),
            (OP_READ, 100_000),
            (OP_ABORT, None),
            (OP_TXEND, 0),
        ])
        _round_trip(ops, args)

    def test_long_runs_cross_the_escape_boundary(self):
        # Inline run lengths stop at 30; 31+ escape to a varint.  Cover
        # both sides of the boundary and a run long enough to need a
        # multi-byte varint (> 31 + 127).
        for run in (1, 30, 31, 32, 500):
            ops, args = _stream(
                [(OP_BEGIN, None)]
                + [(OP_READ, page) for page in range(run)]
                + [(OP_TXEND, run)]
            )
            _round_trip(ops, args)

    def test_backward_and_giant_deltas(self):
        # The delta layer must survive any jump the workload can make:
        # backwards (index root after a heap page), zero (same page), and
        # across the whole page space.
        pages = [50_000, 50_001, 3, 3, 2**40, 1, 2**40 + 7]
        ops, args = _stream(
            [(OP_READ, page) for page in pages] + [(OP_TXEND, 1)]
        )
        _round_trip(ops, args)

    def test_update_payload_extremes(self):
        ops, args = _stream([
            (OP_UPDATE, _update(12, 0)),
            (OP_UPDATE, _update(12, PAYLOAD_MASK)),
            (OP_UPDATE, _update(0, 1)),
        ])
        _round_trip(ops, args)

    def test_read_dup_does_not_disturb_the_delta_chain(self):
        # READ_DUP carries no operand and must leave previous_page alone;
        # a codec bug here shifts every later page id.
        ops, args = _stream([
            (OP_READ, 500),
            (OP_READ_DUP, None),
            (OP_READ_DUP, None),
            (OP_READ, 501),
            (OP_UPDATE, _update(501, 64)),
        ])
        _round_trip(ops, args)

    def test_compresses_typical_locality(self):
        # A synthetic stream with workload-like locality (sequential
        # descents, repeated opcodes) must beat the raw encoding by the
        # acceptance floor even before a real trace is involved.
        events = []
        for tx in range(200):
            events.append((OP_BEGIN, None))
            base = 1000 + (tx % 10) * 64
            for step in range(12):
                events.append((OP_READ, base + step))
            events.append((OP_UPDATE, _update(base + 3, 180)))
            events.append((OP_COMMIT, None))
            events.append((OP_TXEND, 2))
        ops, args = _stream(events)
        blob = _round_trip(ops, args)
        assert raw_boundary_bytes(ops, args) >= 3 * len(blob)


class TestCorruption:
    def _good(self):
        ops, args = _stream([
            (OP_BEGIN, None),
            (OP_READ, 41),
            (OP_UPDATE, _update(42, 99)),
            (OP_COMMIT, None),
            (OP_TXEND, 2),
        ])
        return ops, args, encode_boundary(ops, args)

    def test_magic_mismatch(self):
        _, _, blob = self._good()
        with pytest.raises(TraceCodecError, match="magic"):
            decode_boundary(b"XXXX" + blob[4:])

    def test_truncated_header(self):
        with pytest.raises(TraceCodecError, match="truncated varint"):
            decode_boundary(b"BTC1" + b"\x80")

    def test_corrupt_deflate_body(self):
        _, _, blob = self._good()
        with pytest.raises(TraceCodecError, match="corrupt"):
            decode_boundary(blob[:-4] + b"\x00\x00\x00\x00")

    def test_truncated_body(self):
        ops, args, _ = self._good()
        # Rebuild the container around a truncated (but valid-deflate)
        # body so the failure happens in the section decoders.
        blob = encode_boundary(ops, args)
        n_ops_end = 4
        while blob[n_ops_end] & 0x80:
            n_ops_end += 1
        n_ops_end += 1
        while blob[n_ops_end] & 0x80:
            n_ops_end += 1
        n_ops_end += 1
        body = zlib.decompress(blob[n_ops_end:])
        truncated = blob[:n_ops_end] + zlib.compress(body[:-1], 6)
        with pytest.raises(TraceCodecError):
            decode_boundary(truncated)

    def test_operand_count_mismatch_on_encode(self):
        ops = array("B", [OP_READ, OP_READ])
        args = array("q", [1])  # one operand short
        with pytest.raises(TraceCodecError, match="operand count"):
            encode_boundary(ops, args)
        with pytest.raises(TraceCodecError, match="operand count"):
            encode_boundary(array("B", [OP_BEGIN]), array("q", [1, 2]))

    def test_unknown_opcode(self):
        # Hand-build a container whose opcode section names opcode 7.
        body = bytes([(1 << 3) | 7])
        blob = b"BTC1" + bytes([1, 0]) + zlib.compress(body, 6)
        with pytest.raises(TraceCodecError, match="unknown opcode"):
            decode_boundary(blob)

    def test_zero_length_run(self):
        body = bytes([(0 << 3) | OP_BEGIN])
        blob = b"BTC1" + bytes([1, 0]) + zlib.compress(body, 6)
        with pytest.raises(TraceCodecError, match="zero-length"):
            decode_boundary(blob)

    def test_header_count_mismatch(self):
        ops, args, blob = self._good()
        # Same body, header promising one more operand.
        rest = blob[4:]
        n_ops, pos = rest[0], 1
        n_args = rest[pos]
        tampered = b"BTC1" + bytes([n_ops, n_args + 1]) + rest[pos + 1:]
        with pytest.raises(TraceCodecError):
            decode_boundary(tampered)


class TestPersistedTrace:
    """The cache round trip on a real recorded workload."""

    @pytest.fixture(autouse=True)
    def _hermetic(self, tmp_path, monkeypatch):
        from repro.sim.replay import clear_recorders

        monkeypatch.setenv("REPRO_TRACE_CACHE", str(tmp_path))
        clear_recorders()
        yield
        clear_recorders()

    def _record(self, transactions=400):
        from repro.sim.replay import TraceRecorder

        from repro.tpcc.scale import TINY

        recorder = TraceRecorder(TINY, seed=7)
        trace = recorder.ensure(transactions)
        return recorder, trace

    def test_real_trace_hits_the_compression_floor(self):
        _, trace = self._record()
        blob = encode_boundary(trace.ops, trace.args)
        assert raw_boundary_bytes(trace.ops, trace.args) >= 3 * len(blob)
        decoded_ops, decoded_args = decode_boundary(blob)
        assert decoded_ops == trace.ops
        assert decoded_args == trace.args

    def test_cache_round_trip_is_bit_exact(self, tmp_path):
        from repro.sim.replay import (
            TraceRecorder,
            clear_recorders,
            persisted_trace_stats,
        )
        from repro.tpcc.scale import TINY

        recorder, trace = self._record()
        recorder.save_cache()
        stats = persisted_trace_stats(TINY, 7)
        assert stats is not None
        assert stats["n_transactions"] == trace.n_transactions
        assert stats["raw_bytes"] >= 3 * stats["body_bytes"]

        clear_recorders()
        reloaded = TraceRecorder(TINY, seed=7).ensure(trace.n_transactions)
        assert reloaded.ops == trace.ops
        assert reloaded.args == trace.args

    def test_corrupt_cache_file_falls_back_to_recording(self, tmp_path):
        from repro.sim.replay import TraceRecorder, clear_recorders
        from repro.tpcc.scale import TINY

        recorder, trace = self._record(transactions=60)
        recorder.save_cache()
        (trace_file,) = tmp_path.glob("trace-*.bin")
        raw = trace_file.read_bytes()
        header, _, body = raw.partition(b"\n")
        json.loads(header)  # header is JSON; body is the codec blob
        trace_file.write_bytes(header + b"\n" + body[:-7] + b"\x00" * 7)

        # The damaged file must be *transparent*: the loader detects the
        # corruption, treats the cache as absent, and re-records — so the
        # trace a fresh recorder serves is still bit-identical.
        clear_recorders()
        recovered = TraceRecorder(TINY, seed=7).ensure(60)
        assert recovered.ops == trace.ops
        assert recovered.args == trace.args
