"""B+-tree index: structure, ordering, durability through the engine."""

import random

import pytest

from repro.core.config import CachePolicy
from repro.db.btree import BTreeIndex
from repro.db.catalog import Catalog
from repro.db.schema import TableSchema, int_col
from repro.errors import CatalogError
from tests.conftest import kv_dbms_with
from tests.test_index import DictAccessor


def make_tree(n_pages=64, fanout=8) -> tuple[BTreeIndex, DictAccessor]:
    cat = Catalog()
    cat.create_table(
        TableSchema("t", (int_col("x"),), ("x",), slots_per_page=4),
        expected_rows=100,
    )
    info = cat.create_index("t_bt", "t", n_pages=n_pages)
    tree = BTreeIndex(info, fanout=fanout)
    accessor = DictAccessor()
    tree.create(accessor)
    return tree, accessor


class TestBasics:
    def test_insert_search_roundtrip(self):
        tree, acc = make_tree()
        tree.insert((5,), (100, 2), acc)
        assert tree.search((5,), acc) == (100, 2)
        assert tree.search((6,), acc) is None

    def test_overwrite(self):
        tree, acc = make_tree()
        tree.insert((5,), (100, 2), acc)
        tree.insert((5,), (200, 0), acc)
        assert tree.search((5,), acc) == (200, 0)

    def test_delete(self):
        tree, acc = make_tree()
        tree.insert((5,), (100, 2), acc)
        assert tree.delete((5,), acc)
        assert tree.search((5,), acc) is None
        assert not tree.delete((5,), acc)

    def test_uninitialised_tree_raises(self):
        cat = Catalog()
        cat.create_table(
            TableSchema("t", (int_col("x"),), ("x",), slots_per_page=4), 10
        )
        tree = BTreeIndex(cat.create_index("bt", "t", 8))
        with pytest.raises(CatalogError):
            tree.search((1,), DictAccessor())

    def test_validation(self):
        cat = Catalog()
        cat.create_table(
            TableSchema("t", (int_col("x"),), ("x",), slots_per_page=4), 10
        )
        info = cat.create_index("bt", "t", 8)
        with pytest.raises(CatalogError):
            BTreeIndex(info, fanout=2)
        tiny = cat.create_index("bt2", "t", 1)
        with pytest.raises(CatalogError):
            BTreeIndex(tiny)


class TestSplitsAndStructure:
    def test_tree_grows_in_height_under_load(self):
        tree, acc = make_tree(fanout=4)
        for k in range(60):
            tree.insert((k,), (k, 0), acc)
        assert tree.height(acc) >= 3
        for k in range(60):
            assert tree.search((k,), acc) == (k, 0)

    def test_random_insert_order(self):
        tree, acc = make_tree(fanout=8)
        keys = list(range(200))
        random.Random(3).shuffle(keys)
        for k in keys:
            tree.insert((k,), (k, k % 4), acc)
        for k in range(200):
            assert tree.search((k,), acc) == (k, k % 4)

    def test_node_count_tracks_allocation(self):
        tree, acc = make_tree(fanout=4)
        assert tree.node_count(acc) == 1  # the root leaf
        for k in range(20):
            tree.insert((k,), (k, 0), acc)
        assert tree.node_count(acc) > 3

    def test_exhausted_range_raises(self):
        tree, acc = make_tree(n_pages=4, fanout=4)
        with pytest.raises(CatalogError):
            for k in range(100):
                tree.insert((k,), (k, 0), acc)

    def test_string_keys(self):
        tree, acc = make_tree(fanout=4)
        names = [f"name-{i:03d}" for i in range(30)]
        for i, name in enumerate(names):
            tree.insert((name, i), (i, 0), acc)
        assert tree.search((names[7], 7), acc) == (7, 0)


class TestRangeScan:
    def build(self, n=100, fanout=6):
        tree, acc = make_tree(fanout=fanout)
        keys = list(range(0, 2 * n, 2))  # even keys only
        random.Random(5).shuffle(keys)
        for k in keys:
            tree.insert((k,), (k, 0), acc)
        return tree, acc

    def test_full_scan_is_sorted(self):
        tree, acc = self.build()
        scanned = [key for key, _ in tree.range_scan(None, None, acc)]
        assert scanned == [(k,) for k in range(0, 200, 2)]

    def test_bounded_scan(self):
        tree, acc = self.build()
        scanned = [key[0] for key, _ in tree.range_scan((10,), (20,), acc)]
        assert scanned == [10, 12, 14, 16, 18, 20]

    def test_bounds_between_keys(self):
        tree, acc = self.build()
        scanned = [key[0] for key, _ in tree.range_scan((11,), (19,), acc)]
        assert scanned == [12, 14, 16, 18]

    def test_open_bounds(self):
        tree, acc = self.build(n=20)
        low_open = [k[0] for k, _ in tree.range_scan(None, (6,), acc)]
        assert low_open == [0, 2, 4, 6]
        high_open = [k[0] for k, _ in tree.range_scan((30,), None, acc)]
        assert high_open == list(range(30, 40, 2))

    def test_empty_range(self):
        tree, acc = self.build(n=20)
        assert list(tree.range_scan((100,), (200,), acc)) == []


class TestThroughEngine:
    def test_btree_through_engine_is_transactional(self, kv_dbms):
        tree = kv_dbms.create_btree_index("kv_bt", "kv", n_pages=64, fanout=8)
        tx = kv_dbms.begin()
        accessor = kv_dbms.tx_accessor(tx)
        for k in range(40):
            rid = kv_dbms.index_lookup("kv_pk", (k,))
            tree.insert((k,), rid, accessor)
        kv_dbms.commit(tx)
        tx2 = kv_dbms.begin()
        accessor2 = kv_dbms.tx_accessor(tx2)
        assert tree.search((17,), accessor2) == kv_dbms.index_lookup("kv_pk", (17,))
        kv_dbms.commit(tx2)

    def test_abort_rolls_back_tree_mutations(self, kv_dbms):
        tree = kv_dbms.create_btree_index("kv_bt", "kv", n_pages=64, fanout=8)
        tx = kv_dbms.begin()
        tree.insert((1,), (10, 0), kv_dbms.tx_accessor(tx))
        kv_dbms.abort(tx)
        check = kv_dbms.begin()
        assert tree.search((1,), kv_dbms.tx_accessor(check)) is None
        kv_dbms.commit(check)

    def test_btree_survives_crash_recovery(self):
        from repro.recovery.restart import crash_and_restart

        dbms = kv_dbms_with(CachePolicy.FACE_GSC)
        tree = dbms.create_btree_index("kv_bt", "kv", n_pages=64, fanout=8)
        tx = dbms.begin()
        accessor = dbms.tx_accessor(tx)
        for k in range(50):
            tree.insert((k,), (k % 16, k % 4), accessor)
        dbms.commit(tx)
        crash_and_restart(dbms)
        check = dbms.begin()
        accessor = dbms.tx_accessor(check)
        for k in range(50):
            assert tree.search((k,), accessor) == (k % 16, k % 4)
        scanned = [key[0] for key, _ in tree.range_scan((10,), (15,), accessor)]
        assert scanned == list(range(10, 16))
        dbms.commit(check)


def test_btree_matches_sorted_dict_model():
    """Property-style: random ops vs a reference dict, checked via scans."""
    tree, acc = make_tree(fanout=6)
    model: dict[tuple, tuple] = {}
    rng = random.Random(11)
    for step in range(800):
        key = (rng.randrange(0, 120),)
        if rng.random() < 0.7:
            rid = (step, step % 4)
            tree.insert(key, rid, acc)
            model[key] = rid
        else:
            assert tree.delete(key, acc) == (key in model)
            model.pop(key, None)
    assert [k for k, _ in tree.range_scan(None, None, acc)] == sorted(model)
    for key, rid in model.items():
        assert tree.search(key, acc) == rid
