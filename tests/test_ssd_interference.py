"""FlashDevice read/write interference and serial (QD1) recovery mode."""

import pytest

from repro.storage.profiles import HDD_CHEETAH_15K, MLC_SAMSUNG_470
from repro.storage.raid import Raid0Array
from repro.storage.ssd import (
    READ_INTERFERENCE_FACTOR,
    SERIAL_LATENCY_MULTIPLIER,
    FlashDevice,
)


@pytest.fixture
def ssd() -> FlashDevice:
    return FlashDevice(MLC_SAMSUNG_470, 1 << 16)


class TestReadInterference:
    def test_pure_reads_are_undisturbed(self, ssd):
        for i in range(100):
            ssd.read((i * 97) % ssd.capacity_pages)
        assert ssd.read_interference == 1.0

    def test_random_writes_raise_read_cost(self, ssd):
        baseline = ssd.read(1)
        ssd.write(10)
        for i in range(64):  # heavy random-write phase
            ssd.write((i * 131) % ssd.capacity_pages)
        disturbed = ssd.read(5000)  # random (non-adjacent) read
        assert disturbed > 1.5 * baseline
        assert ssd.read_interference > 2.0

    def test_sequential_writes_do_not_interfere(self, ssd):
        for i in range(100):
            ssd.write(i)  # append stream
        assert ssd.read_interference == pytest.approx(1.0)

    def test_interference_decays_after_write_phase(self, ssd):
        ssd.write(10)
        for i in range(64):
            ssd.write((i * 131) % ssd.capacity_pages)
        high = ssd.read_interference
        for i in range(300):  # long read-only phase slides the window
            ssd.read((i * 7) % ssd.capacity_pages)
        assert ssd.read_interference < high
        assert ssd.read_interference == pytest.approx(1.0, abs=0.1)

    def test_batch_reads_bypass_interference(self, ssd):
        ssd.write(10)
        for i in range(64):
            ssd.write((i * 131) % ssd.capacity_pages)
        per_page_batch = ssd.read(100, npages=64) / 64
        assert per_page_batch == pytest.approx(
            MLC_SAMSUNG_470.seq_read_time, rel=1e-6
        )

    def test_factor_formula(self, ssd):
        ssd.write(0)
        ssd.write(1000)  # one random write in a 2-op window
        expected = 1.0 + READ_INTERFERENCE_FACTOR * (1 / 2)
        assert ssd.read_interference == pytest.approx(expected)


class TestSerialMode:
    def test_flash_random_read_pays_qd1_latency(self, ssd):
        normal = ssd.read(5)
        ssd.serial_mode = True
        serial = ssd.read(999)
        assert serial == pytest.approx(normal * SERIAL_LATENCY_MULTIPLIER, rel=0.01)

    def test_flash_sequential_read_unaffected(self, ssd):
        ssd.serial_mode = True
        t = ssd.read(100, npages=8)
        assert t == pytest.approx(8 * MLC_SAMSUNG_470.seq_read_time)

    def test_flash_writes_unaffected_by_serial_mode(self, ssd):
        ssd.write(0)
        normal = ssd.write(1)
        ssd.serial_mode = True
        serial = ssd.write(2)
        assert serial == pytest.approx(normal)

    def test_raid_serial_read_costs_single_disk_latency(self):
        raid = Raid0Array(8, capacity_pages=1000)
        aggregate = raid.read(5)
        raid.serial_mode = True
        serial = raid.read(900)
        expected = (
            HDD_CHEETAH_15K.random_read_time * Raid0Array.SERIAL_READ_LATENCY_FACTOR
        )
        assert serial == pytest.approx(expected)
        assert serial > 10 * aggregate

    def test_raid_serial_writes_keep_aggregate_throughput(self):
        raid = Raid0Array(8, capacity_pages=1000)
        raid.write(0)
        normal = raid.write(500)
        raid.serial_mode = True
        serial = raid.write(700)
        assert serial == pytest.approx(normal)

    def test_recovery_manager_toggles_serial_mode(self):
        from repro.core.config import CachePolicy
        from repro.recovery.restart import crash_and_restart
        from tests.conftest import kv_dbms_with, kv_write

        dbms = kv_dbms_with(CachePolicy.FACE)
        kv_write(dbms, 1, "x")
        crash_and_restart(dbms)
        assert not dbms.disk.device.serial_mode
        assert not dbms.flash.device.serial_mode
        assert not dbms.log.device.serial_mode
