"""Vectorized replay kernel + zero-copy shared traces (ISSUE 6).

Two independent claims are pinned here:

* The batched kernel (:mod:`repro.sim.kernel`) replays bit-identically to
  the scalar loops it replaces — for every cache policy, across seeds,
  with OBS on and off, and on the pure-``array`` fallback when numpy is
  absent (``REPRO_REPLAY_KERNEL=0`` selects the legacy loops, so equality
  against them is the parity oracle).
* The shared-memory trace layer (:mod:`repro.sim.trace`) publishes one
  decoded trace that any number of workers attach to zero-copy, replays
  from it match the per-process path exactly, and segments are unlinked
  on normal sweep exit *and* after worker crashes — never leaked.
"""

from __future__ import annotations

import dataclasses
import multiprocessing
import os

import pytest

from repro.core.config import CachePolicy, scaled_reference_config
from repro.errors import SharedTraceExhausted
from repro.obs import OBS
from repro.sim import kernel as kernel_mod
from repro.sim import parallel as parallel_mod
from repro.sim.kernel import kernel_totals, numpy_active, reset_kernel_totals
from repro.sim.parallel import CellSpec, _SharedReplayFailed, replay_shared_cell, run_cells
from repro.sim.replay import (
    SharedTraceRecorder,
    TraceRecorder,
    attached_recorder,
    clear_recorders,
    get_recorder,
    has_recorder,
    prepare_replay,
    replay_cell,
)
from repro.sim.scenario import CrashRecoveryScenario
from repro.sim.trace import leaked_shared_segments, publish_boundary_trace
from repro.sim.warmstate import clear_snapshots, fork_dbms, warm_fork_stats
from repro.tpcc.loader import estimate_db_pages
from repro.tpcc.scale import TINY

DB_PAGES = estimate_db_pages(TINY)

#: Simulated-metric namespaces whose obs snapshots must match exactly
#: (mirrors tests/test_replay_parity.py; ``replay.*`` is machinery).
PARITY_PREFIXES = ("flashcache.", "buffer.pool.", "wal.", "recovery.")

FAST = dict(measure_transactions=120, warmup_min=40, warmup_max=600)


@pytest.fixture(autouse=True)
def _hermetic(monkeypatch):
    monkeypatch.setenv("REPRO_TRACE_CACHE", "0")
    clear_recorders()
    clear_snapshots()
    reset_kernel_totals()
    yield
    clear_recorders()
    clear_snapshots()
    reset_kernel_totals()


def _spec(policy: CachePolicy, seed: int = 42, fraction: float = 0.08, **over) -> CellSpec:
    params = {**FAST, **over}
    return CellSpec(
        key=(policy.value, seed, fraction),
        config=scaled_reference_config(DB_PAGES, cache_fraction=fraction, policy=policy),
        scale=TINY,
        seed=seed,
        **params,
    )


def _assert_parity(kernel: dict, legacy: dict, collect_obs: bool) -> None:
    kernel_obs, legacy_obs = kernel.pop("obs"), legacy.pop("obs")
    assert kernel == legacy
    if collect_obs:
        for name, value in legacy_obs["counters"].items():
            if name.startswith(PARITY_PREFIXES):
                assert kernel_obs["counters"].get(name) == value, name
        for name, value in kernel_obs["counters"].items():
            if name.startswith(PARITY_PREFIXES):
                assert legacy_obs["counters"].get(name) == value, name


# -- kernel parity against the scalar loops ----------------------------------


@pytest.mark.parametrize("policy", list(CachePolicy), ids=lambda p: p.value)
@pytest.mark.parametrize("seed", [42, 7])
@pytest.mark.parametrize("collect_obs", [False, True], ids=["obs-off", "obs-on"])
def test_kernel_parity_every_policy(policy, seed, collect_obs, monkeypatch):
    spec = _spec(policy, seed=seed, collect_obs=collect_obs)
    monkeypatch.delenv("REPRO_REPLAY_KERNEL", raising=False)
    with_kernel = dataclasses.asdict(replay_cell(spec, TraceRecorder(TINY, seed)))
    monkeypatch.setenv("REPRO_REPLAY_KERNEL", "0")
    legacy = dataclasses.asdict(replay_cell(spec, TraceRecorder(TINY, seed)))
    _assert_parity(with_kernel, legacy, collect_obs)


@pytest.mark.skipif(not numpy_active(), reason="numpy not installed")
def test_kernel_fallback_equivalence_without_numpy(monkeypatch):
    # The pure-`array` fallback must replay bit-identically to the numpy
    # path: same plan tokens, same policy decisions, same RunResult.
    spec = _spec(CachePolicy.FACE_GSC, collect_obs=True)
    vectorized = dataclasses.asdict(replay_cell(spec, TraceRecorder(TINY, 42)))
    monkeypatch.setattr(kernel_mod, "_np", None)
    monkeypatch.setattr(kernel_mod, "_KIND_LUT_NP", None)
    fallback = dataclasses.asdict(replay_cell(spec, TraceRecorder(TINY, 42)))
    assert fallback["obs"]["gauges"]["replay.kernel.vectorized"] == 0.0
    assert vectorized["obs"]["gauges"]["replay.kernel.vectorized"] == 1.0
    _assert_parity(vectorized, fallback, collect_obs=True)


def test_kernel_gauge_and_counters_published():
    result = replay_cell(_spec(CachePolicy.FACE, collect_obs=True), TraceRecorder(TINY, 42))
    gauges, counters = result.obs.gauges, result.obs.counters
    assert gauges["replay.kernel.vectorized"] == (1.0 if numpy_active() else 0.0)
    assert counters["replay.kernel.transactions"] > 0
    assert counters["replay.kernel.events"] > 0
    assert (
        counters["replay.kernel.batched_reads"] + counters["replay.kernel.scalar_reads"]
        > 0
    )


def test_kernel_totals_accumulate_across_cells():
    replay_cell(_spec(CachePolicy.FACE), TraceRecorder(TINY, 42))
    replay_cell(_spec(CachePolicy.LC), TraceRecorder(TINY, 42))
    totals = kernel_totals()
    assert totals["cells"] == 2
    assert totals["transactions"] > 0
    assert totals["vectorized"] == numpy_active()


# -- shared-memory trace lifecycle -------------------------------------------


def _attach_and_check(handle, expected_ops, expected_args, queue):
    trace = handle.attach()
    queue.put(
        bytes(trace.ops) == bytes(expected_ops)
        and list(trace.args) == list(expected_args)
        and trace.n_transactions == handle.n_transactions
    )
    trace.close()


def _attach_and_crash(handle):
    handle.attach()
    os._exit(3)  # simulated worker crash: no close, no cleanup


def test_shared_trace_attach_in_child_and_unlink_on_release():
    recorder = TraceRecorder(TINY, 42)
    trace = recorder.ensure(30)
    handle = publish_boundary_trace(trace)
    assert handle is not None
    try:
        queue = multiprocessing.Queue()
        child = multiprocessing.Process(
            target=_attach_and_check, args=(handle, trace.ops, trace.args, queue)
        )
        child.start()
        assert queue.get(timeout=30) is True
        child.join(timeout=30)
        assert child.exitcode == 0
    finally:
        handle.acquire()
        handle.release()
    assert leaked_shared_segments() == []


def test_shared_trace_unlink_after_worker_crash():
    recorder = TraceRecorder(TINY, 42)
    handle = publish_boundary_trace(recorder.ensure(30))
    assert handle is not None
    child = multiprocessing.Process(target=_attach_and_crash, args=(handle,))
    child.start()
    child.join(timeout=30)
    assert child.exitcode == 3
    # The crashed attacher must not have taken the segment down with it,
    # and the owner's unlink still works afterwards.
    handle.acquire()
    handle.release()
    assert leaked_shared_segments() == []
    handle.unlink()  # idempotent


def test_shared_recorder_raises_when_exhausted():
    recorder = TraceRecorder(TINY, 42)
    shared = SharedTraceRecorder(TINY, 42, recorder.ensure(30))
    assert shared.ensure(30).n_transactions >= 30
    with pytest.raises(SharedTraceExhausted):
        shared.ensure(31_000)


def test_replay_shared_cell_reports_exhaustion_instead_of_raising():
    recorder = TraceRecorder(TINY, 42)
    handle = publish_boundary_trace(recorder.ensure(30))  # far below FAST's need
    assert handle is not None
    try:
        spec = dataclasses.replace(_spec(CachePolicy.FACE), shared_trace=handle)
        outcome = replay_shared_cell(spec)
        assert isinstance(outcome, _SharedReplayFailed)
    finally:
        handle.acquire()
        handle.release()
    assert leaked_shared_segments() == []


def test_attached_recorder_caches_per_segment():
    recorder = TraceRecorder(TINY, 42)
    handle = publish_boundary_trace(recorder.ensure(800))
    assert handle is not None
    try:
        spec = dataclasses.replace(_spec(CachePolicy.FACE), shared_trace=handle)
        first = attached_recorder(spec)
        assert attached_recorder(spec) is first  # one attach per process
        replayed = dataclasses.asdict(replay_cell(spec, first))
        direct = dataclasses.asdict(replay_cell(spec, TraceRecorder(TINY, 42)))
        replayed.pop("obs"), direct.pop("obs")
        assert replayed == direct
    finally:
        clear_recorders()  # drop the attachment's views before unlinking
        handle.acquire()
        handle.release()
    assert leaked_shared_segments() == []


# -- multi-worker sweeps over one shared segment -----------------------------


def _shared_grid() -> list[CellSpec]:
    return [
        _spec(policy, fraction=fraction)
        for policy in (CachePolicy.FACE, CachePolicy.FACE_GSC)
        for fraction in (0.06, 0.10)
    ]


def test_multiworker_sweep_bit_identical_and_leak_free():
    specs = _shared_grid()
    serial = run_cells(specs, jobs=1, fast=True)
    clear_recorders()
    was_enabled = OBS.enabled
    OBS.clear()
    OBS.enable()
    try:
        parallel = run_cells(specs, jobs=2, fast=True)
        shared_cells = OBS.counter("replay.shared.cells").value
        exhausted = OBS.counter("replay.shared.exhausted").value
    finally:
        OBS.clear()
        if not was_enabled:
            OBS.disable()
    assert list(parallel) == [s.key for s in specs]
    for key in serial:
        assert dataclasses.asdict(parallel[key]) == dataclasses.asdict(serial[key])
    # Every cell was served from the shared segment (the bound covers the
    # whole group, so the exhaustion fallback is never the expected route).
    assert shared_cells + exhausted == len(specs)
    assert shared_cells > 0
    assert leaked_shared_segments() == []


def _crashing_worker(spec):
    os._exit(13)  # pragma: no cover - runs in a pool worker


def test_multiworker_sweep_survives_worker_crash(monkeypatch):
    # Kill every pool worker at the first shared replay: the pool breaks,
    # the parent re-replays everything itself, results stay complete and
    # identical, and no /dev/shm segment outlives the sweep.
    specs = _shared_grid()
    serial = run_cells(specs, jobs=1, fast=True)
    clear_recorders()
    monkeypatch.setattr(parallel_mod, "replay_shared_cell", _crashing_worker)
    with pytest.warns(RuntimeWarning):
        parallel = run_cells(specs, jobs=2, fast=True)
    for key in serial:
        assert dataclasses.asdict(parallel[key]) == dataclasses.asdict(serial[key])
    assert leaked_shared_segments() == []


# -- post-warm-up fork reuse ---------------------------------------------------


@pytest.mark.parametrize(
    "policy", [CachePolicy.FACE, CachePolicy.LC, CachePolicy.NONE], ids=lambda p: p.value
)
def test_warm_fork_second_replay_bit_identical(policy):
    # The first replay of a cell captures a post-warm-up fork; an identical
    # second replay adopts it (hits == 1) and must produce the exact same
    # RunResult as the replay that really warmed up.
    recorder = TraceRecorder(TINY, 42)
    first = dataclasses.asdict(replay_cell(_spec(policy), recorder))
    second = dataclasses.asdict(replay_cell(_spec(policy), recorder))
    assert warm_fork_stats() == {"hits": 1, "misses": 1}
    first.pop("obs"), second.pop("obs")
    assert second == first


def test_warm_fork_crash_scenario_bit_identical():
    # Crash cells exercise the fork hardest: recovery replays the durable
    # WAL, which forked systems *share* record-for-record.
    scenario = CrashRecoveryScenario(checkpoint_interval=1.0, warmup_min=40, warmup_max=600)
    spec = dataclasses.replace(_spec(CachePolicy.FACE), scenario=scenario)
    recorder = TraceRecorder(TINY, 42)
    first = dataclasses.asdict(replay_cell(spec, recorder))
    second = dataclasses.asdict(replay_cell(spec, recorder))
    assert warm_fork_stats()["hits"] == 1
    first.pop("obs"), second.pop("obs")
    assert second == first


def test_warm_fork_parity_on_legacy_loops(monkeypatch):
    monkeypatch.setenv("REPRO_REPLAY_KERNEL", "0")
    recorder = TraceRecorder(TINY, 42)
    first = dataclasses.asdict(replay_cell(_spec(CachePolicy.LC), recorder))
    second = dataclasses.asdict(replay_cell(_spec(CachePolicy.LC), recorder))
    assert warm_fork_stats() == {"hits": 1, "misses": 1}
    first.pop("obs"), second.pop("obs")
    assert second == first


def test_warm_fork_ineligible_with_obs_enabled():
    # OBS runs must execute warm-up for real (post-reset counter set),
    # so they never consult the fork cache at all.
    recorder = TraceRecorder(TINY, 42)
    replay_cell(_spec(CachePolicy.FACE, collect_obs=True), recorder)
    replay_cell(_spec(CachePolicy.FACE, collect_obs=True), recorder)
    assert warm_fork_stats() == {"hits": 0, "misses": 0}


def test_warm_fork_env_disable(monkeypatch):
    monkeypatch.setenv("REPRO_REPLAY_WARMFORK", "0")
    recorder = TraceRecorder(TINY, 42)
    first = dataclasses.asdict(replay_cell(_spec(CachePolicy.FACE), recorder))
    second = dataclasses.asdict(replay_cell(_spec(CachePolicy.FACE), recorder))
    assert warm_fork_stats() == {"hits": 0, "misses": 0}
    first.pop("obs"), second.pop("obs")
    assert second == first  # determinism holds with the cache off too


def test_fork_dbms_shares_wal_records_not_spines():
    # fork_dbms must share the immutable bulk (WAL records, page images)
    # while giving the clone private mutable containers.
    recorder = TraceRecorder(TINY, 42)
    spec = _spec(CachePolicy.FACE)
    from repro.sim.replay import ReplayRunner

    runner = ReplayRunner(spec.config, recorder)
    runner.warm_up(40, 600)
    clone = fork_dbms(runner.dbms)
    original = runner.dbms
    assert clone is not original
    assert clone.log._durable is not original.log._durable
    assert len(clone.log._durable) == len(original.log._durable)
    for ours, theirs in zip(clone.log._durable[:50], original.log._durable[:50]):
        assert ours is theirs  # records shared, never copied
    assert clone.buffer._frames is not original.buffer._frames
    # The clone's pool and its policy see the *same* frame objects.
    policy_frames = {id(f) for f in clone.buffer._policy._frames.values()}
    pool_frames = {id(f) for f in clone.buffer._frames.values()}
    assert policy_frames == pool_frames
    # Mutating the clone must not leak into the original.
    clone.log._durable.append(None)
    assert original.log._durable[-1] is not None


# -- one-time preparation accounting -----------------------------------------


def test_prepare_replay_reports_per_group_cost():
    specs = _shared_grid() + [_spec(CachePolicy.LC, seed=9)]
    assert not has_recorder(TINY, 42)
    report = prepare_replay(specs)
    assert has_recorder(TINY, 42) and has_recorder(TINY, 9)
    assert len(report["groups"]) == 2
    assert report["seconds"] >= sum(g["seconds"] for g in report["groups"]) * 0.5
    for group in report["groups"]:
        assert group["already_live"] is False
        assert group["seconds"] >= 0.0
    # Idempotent: a second call finds the recorders live and is ~free.
    again = prepare_replay(specs)
    assert all(g["already_live"] for g in again["groups"])
