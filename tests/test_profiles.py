"""Device profiles must match the paper's Table 1 exactly."""

import pytest

from repro.storage.profiles import (
    DRAM_TO_FLASH_PRICE_RATIO,
    HDD_CHEETAH_15K,
    MLC_INTEL_X25M,
    MLC_SAMSUNG_470,
    PAGE_SIZE,
    RAID0_8_DISKS,
    SLC_INTEL_X25E,
    TABLE1_PROFILES,
)


def test_page_size_matches_postgresql_setup():
    assert PAGE_SIZE == 4096  # Section 5.2: PostgreSQL page size 4 KB


def test_table1_contains_all_five_rows():
    assert len(TABLE1_PROFILES) == 5
    names = {p.name for p in TABLE1_PROFILES.values()}
    assert len(names) == 5


def test_samsung470_numbers_match_table1():
    p = MLC_SAMSUNG_470
    assert p.random_read_iops == 28_495
    assert p.random_write_iops == 6_314
    assert p.seq_read_mbps == pytest.approx(251.33)
    assert p.seq_write_mbps == pytest.approx(242.80)
    assert p.capacity_gb == 256
    assert p.price_usd == 450


def test_price_per_gb_matches_table1_parentheses():
    # Table 1 rounds to two decimals.
    assert MLC_SAMSUNG_470.price_per_gb == pytest.approx(1.78, abs=0.03)
    assert MLC_INTEL_X25M.price_per_gb == pytest.approx(2.25, abs=0.01)
    assert SLC_INTEL_X25E.price_per_gb == pytest.approx(13.75, abs=0.01)
    assert HDD_CHEETAH_15K.price_per_gb == pytest.approx(1.63, abs=0.02)
    assert RAID0_8_DISKS.price_per_gb == pytest.approx(1.64, abs=0.01)


def test_random_read_time_is_iops_reciprocal():
    assert MLC_SAMSUNG_470.random_read_time == pytest.approx(1 / 28_495)
    assert HDD_CHEETAH_15K.random_write_time == pytest.approx(1 / 343)


def test_sequential_time_is_bandwidth_cost():
    expected = PAGE_SIZE / (242.80 * 1e6)
    assert MLC_SAMSUNG_470.seq_write_time == pytest.approx(expected)


def test_random_write_penalty_is_order_of_magnitude_on_flash():
    """Section 2.1: random writes are 10-13% of sequential write bandwidth."""
    for profile in (MLC_SAMSUNG_470, SLC_INTEL_X25E, MLC_INTEL_X25M):
        assert 7 <= profile.random_write_penalty <= 15


def test_disk_has_no_meaningful_write_penalty():
    """Table 1: disk random/sequential gap is positional, not structural —
    the measured single-op costs differ by far more than flash's 10x."""
    assert HDD_CHEETAH_15K.random_write_penalty > 50  # seeks dominate


def test_flash_random_read_much_faster_than_disk():
    """Section 2.1: replace random disk I/O with random flash reads."""
    ratio = HDD_CHEETAH_15K.random_read_time / MLC_SAMSUNG_470.random_read_time
    assert ratio > 50


def test_scaled_preserves_speed_and_price_density():
    small = MLC_SAMSUNG_470.scaled("cache", capacity_gb=4)
    assert small.capacity_gb == 4
    assert small.random_read_iops == MLC_SAMSUNG_470.random_read_iops
    assert small.price_per_gb == pytest.approx(MLC_SAMSUNG_470.price_per_gb)


def test_capacity_pages():
    assert HDD_CHEETAH_15K.capacity_pages == int(146.8 * 1024**3 // 4096)


def test_dram_flash_price_ratio_matches_section_2_2():
    assert DRAM_TO_FLASH_PRICE_RATIO == 10.0
