"""Persisted-trace corruption paths: every bad file fails closed.

The trace cache is derived state, so the only acceptable response to a
damaged or mismatched file is to treat it as absent and re-record — never
to replay garbage.  These tests drive every rejection branch of
``_load_trace`` (truncated body, flipped body byte / CRC mismatch, header
version skew, scale skew, seed skew, unparseable header) and pin the
recorder-level consequence: a fresh :class:`TraceRecorder` facing the bad
file silently records a trace bit-identical to an uncorrupted run.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.sim.replay import (
    TRACE_FORMAT_VERSION,
    TraceRecorder,
    _cache_key,
    _load_trace,
    cached_trace_exists,
    clear_recorders,
)
from repro.tpcc.scale import BENCH, TINY

SEED = 11
TRANSACTIONS = 60


@pytest.fixture(autouse=True)
def _cache_dir(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_TRACE_CACHE", str(tmp_path))
    clear_recorders()
    yield tmp_path
    clear_recorders()


def _saved_trace_path(cache_dir: Path) -> Path:
    recorder = TraceRecorder(TINY, SEED)
    recorder.ensure(TRANSACTIONS)
    assert recorder.save_cache()
    clear_recorders()
    path = cache_dir / _cache_key(TINY, SEED)
    assert path.is_file()
    return path


def _reference_trace():
    recorder = TraceRecorder(TINY, SEED, use_cache=False)
    recorder.ensure(TRANSACTIONS)
    return recorder.trace


def test_intact_file_round_trips(_cache_dir):
    path = _saved_trace_path(_cache_dir)
    trace = _load_trace(path, TINY, SEED)
    assert trace is not None
    reference = _reference_trace()
    assert trace.ops == reference.ops
    assert trace.args == reference.args
    assert trace.n_transactions >= TRANSACTIONS


def test_truncated_body_fails_closed(_cache_dir):
    path = _saved_trace_path(_cache_dir)
    data = path.read_bytes()
    path.write_bytes(data[: len(data) - 7])
    assert _load_trace(path, TINY, SEED) is None


def test_truncated_to_header_only_fails_closed(_cache_dir):
    path = _saved_trace_path(_cache_dir)
    header_line = path.read_bytes().split(b"\n", 1)[0] + b"\n"
    path.write_bytes(header_line)
    assert _load_trace(path, TINY, SEED) is None


def test_flipped_body_byte_fails_crc(_cache_dir):
    path = _saved_trace_path(_cache_dir)
    data = bytearray(path.read_bytes())
    body_start = data.index(b"\n") + 1
    # Flip a byte deep in the body: lengths still parse, the CRC cannot.
    data[body_start + len(data[body_start:]) // 2] ^= 0xFF
    path.write_bytes(bytes(data))
    assert _load_trace(path, TINY, SEED) is None


def _rewrite_header(path: Path, **overrides) -> None:
    header_line, body = path.read_bytes().split(b"\n", 1)
    header = json.loads(header_line.decode())
    header.update(overrides)
    path.write_bytes(json.dumps(header).encode() + b"\n" + body)


def test_version_skew_fails_closed(_cache_dir):
    path = _saved_trace_path(_cache_dir)
    _rewrite_header(path, version=TRACE_FORMAT_VERSION + 1)
    assert _load_trace(path, TINY, SEED) is None


def test_scale_skew_fails_closed(_cache_dir):
    path = _saved_trace_path(_cache_dir)
    _rewrite_header(path, scale=repr(BENCH))
    assert _load_trace(path, TINY, SEED) is None


def test_seed_skew_fails_closed(_cache_dir):
    path = _saved_trace_path(_cache_dir)
    _rewrite_header(path, seed=SEED + 1)
    assert _load_trace(path, TINY, SEED) is None


def test_garbage_header_fails_closed(_cache_dir):
    path = _saved_trace_path(_cache_dir)
    body = path.read_bytes().split(b"\n", 1)[1]
    path.write_bytes(b"not json at all\n" + body)
    assert _load_trace(path, TINY, SEED) is None


def test_recorder_re_records_over_corruption(_cache_dir):
    """The end-to-end guarantee: a corrupt cache never changes results."""
    path = _saved_trace_path(_cache_dir)
    data = bytearray(path.read_bytes())
    data[-1] ^= 0x55
    path.write_bytes(bytes(data))

    assert cached_trace_exists(TINY, SEED)  # the file is there...
    recorder = TraceRecorder(TINY, SEED)
    trace = recorder.ensure(TRANSACTIONS)  # ...but it re-records afresh
    reference = _reference_trace()
    assert trace.ops[: len(reference.ops)] == reference.ops
    assert trace.args[: len(reference.args)] == reference.args
