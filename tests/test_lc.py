"""Lazy Cleaning baseline: in-place LRU-2 cache with a background cleaner."""

import pytest

from repro.errors import CacheError
from repro.flashcache.lc import LazyCleaningCache
from repro.storage.device import IOKind
from tests.conftest import make_frame

CAPACITY = 8


@pytest.fixture
def lc(flash_volume, disk_volume) -> LazyCleaningCache:
    return LazyCleaningCache(flash_volume, disk_volume, capacity=CAPACITY)


def test_caches_clean_and_dirty_on_exit(lc):
    lc.on_dram_evict(make_frame(1, dirty=False))
    lc.on_dram_evict(make_frame(2, dirty=True, fdirty=True))
    assert lc.lookup_fetch(1) is not None
    image, dirty = lc.lookup_fetch(2)
    assert dirty


def test_single_copy_overwritten_in_place(lc):
    frame = make_frame(1, dirty=True, fdirty=True)
    lc.on_dram_evict(frame)
    frame.page.put(0, ("v2",), lsn=9)
    lc.on_dram_evict(frame)
    assert lc.cached_pages == 1
    image, _ = lc.lookup_fetch(1)
    assert image.slots[0] == ("v2",)


def test_steady_state_overwrites_are_random_flash_writes(lc):
    """The LRU in-place pattern is random I/O — the Table 4 contrast.
    (The initial fill is sequential; steady state is overwrites.)"""
    for i in range(CAPACITY):
        lc.on_dram_evict(make_frame(i, dirty=True, fdirty=True))
    before = lc.flash.device.stats.ops[IOKind.RANDOM_WRITE]
    for i in (5, 1, 6, 2, 7, 0):  # re-evictions overwrite in place
        lc.on_dram_evict(make_frame(i, dirty=True, fdirty=True))
    stats = lc.flash.device.stats
    assert stats.ops[IOKind.RANDOM_WRITE] - before >= 5


def test_write_back_defers_disk_until_flash_eviction(lc):
    lc.on_dram_evict(make_frame(1, dirty=True, fdirty=True))
    assert lc.stats.disk_writes == 0
    for i in range(2, CAPACITY + 2):  # push page 1 out of the LRU-2 cache
        lc.on_dram_evict(make_frame(i, dirty=False))
    assert lc.stats.disk_writes == 1
    assert lc.disk.peek(1) is not None


def test_dirty_victim_costs_flash_read_plus_disk_write(lc):
    lc.on_dram_evict(make_frame(1, dirty=True, fdirty=True))
    for i in range(2, CAPACITY + 1):
        lc.on_dram_evict(make_frame(i, dirty=False))
    reads_before = lc.flash.device.stats.read_pages
    lc.on_dram_evict(make_frame(99, dirty=False))  # evicts dirty page 1
    assert lc.flash.device.stats.read_pages == reads_before + 1
    assert lc.stats.disk_writes == 1


def test_clean_victim_eviction_is_free_of_data_io(lc):
    for i in range(CAPACITY):
        lc.on_dram_evict(make_frame(i, dirty=False))
    disk_before = lc.disk.device.stats.write_pages
    lc.on_dram_evict(make_frame(100, dirty=False))
    assert lc.disk.device.stats.write_pages == disk_before


def test_lazy_cleaner_triggers_above_threshold(flash_volume, disk_volume):
    lc = LazyCleaningCache(flash_volume, disk_volume, CAPACITY, dirty_threshold=0.5)
    for i in range(CAPACITY):  # all dirty: fraction 1.0 > 0.5
        lc.on_dram_evict(make_frame(i, dirty=True, fdirty=True))
    assert lc.cleaner_flushes > 0
    assert lc.dirty_fraction <= 0.5
    # Cleaned pages stay cached, just clean.
    assert lc.cached_pages == CAPACITY


def test_checkpoint_frame_writes_through_to_disk_and_flash(lc):
    frame = make_frame(3, dirty=True, fdirty=True)
    lc.on_dram_evict(frame)
    frame.page.put(0, ("ckpt",), lsn=10)
    frame.dirty = frame.fdirty = True
    lc.checkpoint_frame(frame)
    assert lc.disk.peek(3).slots[0] == ("ckpt",)
    assert not frame.dirty and not frame.fdirty
    image, dirty = lc.lookup_fetch(3)
    assert image.slots[0] == ("ckpt",)
    assert not dirty  # synced with disk now


def test_finish_checkpoint_flushes_all_dirty_cached_pages(lc):
    for i in range(4):
        lc.on_dram_evict(make_frame(i, dirty=True, fdirty=True))
    lc.finish_checkpoint()
    assert lc.dirty_fraction == 0.0
    assert lc.stats.disk_writes == 4
    for i in range(4):
        assert lc.disk.peek(i) is not None


def test_crash_makes_cache_unusable(lc):
    lc.on_dram_evict(make_frame(1, dirty=False))
    lc.crash()
    assert lc.lookup_fetch(1) is None
    timings = lc.recover()
    assert not timings.cache_survives


def test_hit_updates_lru2_recency(lc):
    for i in range(CAPACITY):
        lc.on_dram_evict(make_frame(i, dirty=False))
    lc.lookup_fetch(0)
    lc.lookup_fetch(0)  # page 0 now twice-referenced
    lc.on_dram_evict(make_frame(100, dirty=False))
    assert lc.lookup_fetch(0) is not None  # survived; a colder page went


def test_validation():
    import repro.storage as st

    flash = st.Volume(st.FlashDevice(st.MLC_SAMSUNG_470, 64))
    disk = st.Volume(st.DiskDevice(st.HDD_CHEETAH_15K, 64))
    with pytest.raises(CacheError):
        LazyCleaningCache(flash, disk, capacity=0)
    with pytest.raises(CacheError):
        LazyCleaningCache(flash, disk, capacity=8, dirty_threshold=1.5)
