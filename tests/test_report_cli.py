"""Markdown reports and the command-line interface."""

import pytest

from repro.analysis.report import (
    comparison_summary,
    restart_report_table,
    run_result_table,
)
from repro.cli import build_parser, main
from repro.recovery.restart import RestartReport
from repro.sim.runner import RunResult


def result(name: str, tpmc: float) -> RunResult:
    return RunResult(
        name=name,
        transactions=100,
        wall_seconds=10.0,
        tpmc=tpmc,
        dram_hit_rate=0.5,
        flash_hit_rate=0.7,
        write_reduction=0.6,
        utilization={"cpu": 0.1, "disk": 1.0, "flash": 0.3, "log": 0.0},
    )


class TestReports:
    def test_run_result_table_is_markdown(self):
        text = run_result_table([result("FaCE+GSC", 4000)], title="T")
        assert text.startswith("### T")
        assert "| FaCE+GSC | 4,000 |" in text
        assert "| disk |" in text  # bottleneck column

    def test_restart_report_table(self):
        report = RestartReport(
            total_time=1.5, metadata_restore_time=0.01, log_records_scanned=1000,
            fpw_installed=50, redo_applied=200, pages_from_flash=90,
            pages_from_disk=10, losers=1,
        )
        text = restart_report_table([("FaCE", report)])
        assert "| FaCE | 1.500 |" in text
        assert "90.0%" in text

    def test_comparison_summary(self):
        text = comparison_summary(result("HDD-only", 1000), result("FaCE", 3000))
        assert "3.00x" in text


class TestCli:
    def test_parser_covers_all_commands(self):
        parser = build_parser()
        for argv in (
            ["run", "face"],
            ["recover", "hdd-only"],
            ["devices"],
            ["sweep", "face+gsc"],
        ):
            args = parser.parse_args(argv)
            assert callable(args.func)

    def test_unknown_policy_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "no-such-policy"])

    def test_devices_command_runs(self, capsys):
        assert main(["devices", "--ops", "200"]) == 0
        out = capsys.readouterr().out
        assert "mlc_samsung_470" in out
        assert "raid0_8_disks" in out

    def test_run_command_tiny(self, capsys):
        code = main(
            ["--scale", "tiny", "--cache-fraction", "0.3",
             "run", "face", "--transactions", "150"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "| FaCE |" in out

    def test_recover_command_tiny(self, capsys):
        code = main(
            ["--scale", "tiny", "--cache-fraction", "0.3",
             "recover", "face+gsc", "--interval", "0.05"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Crash + restart" in out

    def test_sweep_command_tiny(self, capsys):
        code = main(
            ["--scale", "tiny", "sweep", "face",
             "--fractions", "0.2", "0.4", "--transactions", "100"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "tpmC" in out

    def test_bad_scale_exits(self):
        with pytest.raises(SystemExit):
            main(["--scale", "galactic", "run", "face", "--transactions", "10"])
