"""Table schemas and the catalog's page-range allocation."""

import pytest

from repro.db.catalog import Catalog
from repro.db.schema import TableSchema, float_col, int_col, str_col
from repro.errors import CatalogError
from repro.tpcc import schema as tpcc_schema


def simple_schema(name="t", slots=0):
    return TableSchema(
        name=name,
        columns=(int_col("id"), str_col("val", 16)),
        primary_key=("id",),
        slots_per_page=slots,
    )


class TestSchema:
    def test_slots_per_page_derived_from_widths(self):
        s = simple_schema()
        assert s.slots_per_page == (4096 - 96) // (8 + 16 + 8)

    def test_explicit_slots_override(self):
        assert simple_schema(slots=7).slots_per_page == 7

    def test_duplicate_columns_rejected(self):
        with pytest.raises(CatalogError):
            TableSchema("bad", (int_col("a"), int_col("a")), primary_key=("a",))

    def test_pk_must_reference_columns(self):
        with pytest.raises(CatalogError):
            TableSchema("bad", (int_col("a"),), primary_key=("zzz",))

    def test_pk_extraction(self):
        s = TableSchema(
            "t", (int_col("a"), float_col("b"), int_col("c")), primary_key=("c", "a")
        )
        assert s.pk_indices() == (2, 0)
        assert s.pk_of((1, 2.0, 3)) == (3, 1)

    def test_column_index_and_missing(self):
        s = simple_schema()
        assert s.column_index("val") == 1
        with pytest.raises(CatalogError):
            s.column_index("nope")

    def test_pages_for_rows_rounds_up(self):
        s = simple_schema(slots=10)
        assert s.pages_for_rows(1) == 1
        assert s.pages_for_rows(10) == 1
        assert s.pages_for_rows(11) == 2
        assert s.pages_for_rows(0) == 1

    def test_tpcc_relative_footprints(self):
        """STOCK and CUSTOMER rows are wide; NEW_ORDER rows are tiny —
        their rows-per-page must reflect that (keeps DB proportions)."""
        assert tpcc_schema.NEW_ORDER.slots_per_page > 5 * tpcc_schema.STOCK.slots_per_page
        assert tpcc_schema.CUSTOMER.slots_per_page < tpcc_schema.ORDER.slots_per_page


class TestCatalog:
    def test_contiguous_disjoint_allocation(self):
        cat = Catalog()
        a = cat.create_table(simple_schema("a", slots=10), expected_rows=25)
        b = cat.create_table(simple_schema("b", slots=10), expected_rows=5)
        assert a.first_page == 0
        assert a.n_pages == 3
        assert b.first_page == 3
        assert cat.total_pages == 4

    def test_growth_factor_reserves_headroom(self):
        cat = Catalog()
        info = cat.create_table(simple_schema(slots=10), 10, growth_factor=3.0)
        assert info.n_pages == 3

    def test_duplicate_table_rejected(self):
        cat = Catalog()
        cat.create_table(simple_schema("t"), 1)
        with pytest.raises(CatalogError):
            cat.create_table(simple_schema("t"), 1)

    def test_index_allocation_and_validation(self):
        cat = Catalog()
        cat.create_table(simple_schema("t"), 100)
        idx = cat.create_index("t_pk", "t", n_pages=4)
        assert idx.n_pages == 4
        assert idx.first_page == cat.table("t").end_page
        with pytest.raises(CatalogError):
            cat.create_index("t_pk", "t", 4)  # duplicate
        with pytest.raises(CatalogError):
            cat.create_index("x", "missing", 4)  # unknown table
        with pytest.raises(CatalogError):
            cat.create_index("y", "t", 0)  # empty

    def test_owner_of_page(self):
        cat = Catalog()
        cat.create_table(simple_schema("t", slots=10), 25)
        cat.create_index("t_pk", "t", 2)
        assert cat.owner_of_page(0) == "t"
        assert cat.owner_of_page(3) == "t_pk"
        with pytest.raises(CatalogError):
            cat.owner_of_page(99)

    def test_lookup_missing_raises(self):
        cat = Catalog()
        with pytest.raises(CatalogError):
            cat.table("nope")
        with pytest.raises(CatalogError):
            cat.index("nope")
