"""TPC-C driver mix and the experiment runner's measurement discipline."""

import pytest

from repro.core.config import CachePolicy
from repro.core.dbms import SimulatedDBMS
from repro.errors import WorkloadError
from repro.sim.metrics import ThroughputSeries
from repro.sim.runner import ExperimentRunner, run_steady_state
from repro.tpcc.driver import TpccDriver
from repro.tpcc.loader import load_tpcc
from repro.tpcc.scale import TINY
from tests.conftest import tiny_config


@pytest.fixture
def driver() -> TpccDriver:
    dbms = SimulatedDBMS(
        tiny_config(CachePolicy.FACE_GSC, disk_capacity_pages=8192, cache_pages=64)
    )
    return TpccDriver(load_tpcc(dbms, TINY, seed=5), seed=9)


class TestDriver:
    def test_mix_approximates_spec_percentages(self, driver):
        driver.run(1000)
        kinds = driver.stats.by_kind
        assert 0.40 <= kinds["new_order"] / 1000 <= 0.50
        assert 0.38 <= kinds["payment"] / 1000 <= 0.48
        for minor in ("order_status", "delivery", "stock_level"):
            assert 0.01 <= kinds[minor] / 1000 <= 0.08

    def test_stats_consistency(self, driver):
        driver.run(300)
        stats = driver.stats
        assert stats.executed == 300
        assert stats.committed + stats.aborted == 300
        assert stats.neworder_commits <= stats.by_kind["new_order"]

    def test_forced_kind(self, driver):
        result = driver.run_one("payment")
        assert result.kind == "payment"

    def test_checkpointer_called_per_transaction(self, driver):
        calls = []
        driver.run(10, checkpointer=lambda: calls.append(1))
        assert len(calls) == 10

    def test_negative_count_rejected(self, driver):
        with pytest.raises(WorkloadError):
            driver.run(-1)

    def test_tpmc_math(self, driver):
        driver.stats.neworder_commits = 120
        assert driver.tpmc(60.0) == pytest.approx(120.0)
        assert driver.tpmc(0.0) == 0.0

    def test_reset(self, driver):
        driver.run(50)
        driver.stats.reset()
        assert driver.stats.executed == 0
        assert driver.stats.by_kind == {}


class TestRunner:
    def make(self, policy=CachePolicy.FACE_GSC):
        config = tiny_config(
            policy, disk_capacity_pages=8192, cache_pages=64, buffer_pages=16
        )
        return ExperimentRunner(config, TINY, seed=3)

    def test_warmup_populates_cache_then_resets(self):
        runner = self.make()
        executed = runner.warm_up(min_transactions=50, max_transactions=5000)
        assert executed >= 50
        assert runner.dbms.cache.directory.is_full
        assert runner.dbms.wall_clock() == 0.0
        assert runner.driver.stats.executed == 0

    def test_measure_produces_consistent_result(self):
        runner = self.make()
        runner.warm_up(50, 2000)
        result = runner.measure(200)
        assert result.transactions == 200
        assert result.wall_seconds > 0
        assert result.tpmc > 0
        assert 0 <= result.flash_hit_rate <= 1
        assert 0 <= result.dram_hit_rate <= 1
        assert max(result.utilization.values()) == pytest.approx(1.0)
        assert result.name == "FaCE+GSC"

    def test_checkpoint_interval_fires(self):
        runner = self.make()
        runner.warm_up(50, 2000)
        wall_rate = None
        runner.measure(50)
        wall = runner.dbms.wall_clock()
        checkpoint_interval = wall / 10 if wall > 0 else 0.001
        before = runner.dbms.checkpoints
        runner.measure(200, checkpoint_interval=checkpoint_interval)
        assert runner.dbms.checkpoints > before

    def test_series_recording(self):
        runner = self.make()
        runner.warm_up(50, 2000)
        series = ThroughputSeries()
        runner.measure(300, series=series, sample_every=10)
        assert len(series.samples) >= 30
        walls = [s.wall_seconds for s in series.samples]
        assert walls == sorted(walls)
        assert series.final_commits == runner.driver.stats.neworder_commits

    def test_run_steady_state_one_call(self):
        config = tiny_config(
            CachePolicy.FACE, disk_capacity_pages=8192, cache_pages=64
        )
        result = run_steady_state(
            config, TINY, measure_transactions=100, warmup_min=50, warmup_max=1000
        )
        assert result.transactions == 100

    def test_hdd_only_runner(self):
        runner = self.make(CachePolicy.NONE)
        runner.warm_up(50, 200)  # nothing to populate: stops at minimum
        result = runner.measure(100)
        assert result.flash_hit_rate == 0.0
        assert result.utilization["flash"] == 0.0


class TestThroughputSeries:
    def test_windowing_differentiates_cumulative_counts(self):
        series = ThroughputSeries()
        series.record(5.0, 10)
        series.record(15.0, 30)
        series.record(25.0, 40)
        windows = series.windowed_tpmc(10.0)
        assert windows[0] == (10.0, pytest.approx(10 * 6.0))
        assert windows[1] == (20.0, pytest.approx(20 * 6.0))
        assert windows[2] == (30.0, pytest.approx(10 * 6.0))

    def test_empty_and_invalid(self):
        assert ThroughputSeries().windowed_tpmc(10) == []
        series = ThroughputSeries()
        series.record(1.0, 1)
        assert series.windowed_tpmc(0) == []

    def test_quiet_windows_report_zero(self):
        series = ThroughputSeries()
        series.record(1.0, 5)
        series.record(35.0, 6)
        windows = series.windowed_tpmc(10.0)
        assert windows[1][1] == 0.0  # nothing committed in (10, 20]
