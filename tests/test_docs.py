"""Documentation quality gates: docstring lint + executable markdown.

Two contracts keep the docs from rotting:

* every module under ``src/repro`` carries a real module docstring (not a
  placeholder) — the package is meant to be read as much as run;
* every ```python fenced block in README.md, docs/API.md and
  docs/CONCURRENCY.md actually
  executes.  Blocks run top-to-bottom per file in one shared namespace
  (so a later snippet may build on an earlier one, exactly as a reader
  working through the file would), and a failure reports the file and
  line of the offending block.  Mutating a snippet so it no longer runs
  turns CI red.
"""

from __future__ import annotations

import ast
import re
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent
SRC = REPO / "src" / "repro"

#: Markdown files whose ```python blocks must execute.
EXECUTABLE_DOCS = (
    REPO / "README.md",
    REPO / "docs" / "API.md",
    REPO / "docs" / "CONCURRENCY.md",
)

#: Anything shorter than this is a placeholder, not documentation.
MIN_DOCSTRING_CHARS = 60


def _modules() -> list[Path]:
    return sorted(SRC.rglob("*.py"))


def test_docstring_lint_covers_the_service_layer():
    """The rglob sweep must pick up every ``repro.sim.service`` module —
    guard against the lint silently narrowing its net."""
    covered = {path.relative_to(SRC).as_posix() for path in _modules()}
    assert "sim/service.py" in covered


@pytest.mark.parametrize(
    "path", _modules(), ids=lambda p: str(p.relative_to(SRC))
)
def test_module_has_real_docstring(path: Path):
    doc = ast.get_docstring(ast.parse(path.read_text(encoding="utf-8")))
    assert doc is not None, f"{path.relative_to(REPO)} has no module docstring"
    assert len(doc.strip()) >= MIN_DOCSTRING_CHARS, (
        f"{path.relative_to(REPO)} docstring is a placeholder "
        f"({len(doc.strip())} chars < {MIN_DOCSTRING_CHARS})"
    )


# Only fences whose info string is exactly ``python`` are executed;
# ``bash``, ``text``, and bare fences are prose.
_FENCE = re.compile(r"^```python[ \t]*\n(.*?)^```[ \t]*$", re.M | re.S)


def python_blocks(path: Path) -> list[tuple[int, str]]:
    """``(first_code_line, source)`` for each ```python fence in *path*."""
    text = path.read_text(encoding="utf-8")
    return [
        (text[: match.start()].count("\n") + 2, match.group(1))
        for match in _FENCE.finditer(text)
    ]


@pytest.mark.parametrize("doc", EXECUTABLE_DOCS, ids=lambda p: p.name)
def test_markdown_python_blocks_execute(doc: Path):
    assert doc.is_file(), f"{doc} is missing"
    blocks = python_blocks(doc)
    assert blocks, f"{doc.name} has no ```python blocks to check"
    namespace: dict = {"__name__": f"docs_block_{doc.stem.lower()}"}
    for line, source in blocks:
        code = compile(source, f"{doc.name}:{line}", "exec")
        try:
            exec(code, namespace)  # noqa: S102 - executing our own docs
        except Exception as exc:  # pragma: no cover - failure path
            pytest.fail(
                f"{doc.name} ```python block at line {line} failed: {exc!r}"
            )
