"""Engine edge cases: growth wrap, empty pages, multi-table interplay."""

import pytest

from repro.core.config import CachePolicy
from repro.core.dbms import SimulatedDBMS
from repro.db.schema import TableSchema, int_col, str_col
from repro.errors import CatalogError
from tests.conftest import KV_SCHEMA, kv_dbms_with, kv_read, kv_write, tiny_config


class TestHeapWrapUnderTransactions:
    def test_ring_append_recycles_and_stays_recoverable(self):
        dbms = SimulatedDBMS(tiny_config(CachePolicy.FACE))
        schema = TableSchema(
            "ring", (int_col("n"), str_col("v", 8)), ("n",), slots_per_page=4
        )
        dbms.create_table(schema, expected_rows=16)  # capacity 16 rows
        dbms.begin_load()
        dbms.finish_load()
        tx = dbms.begin()
        rids = [dbms.insert_row(tx, "ring", (n, f"v{n}")) for n in range(20)]
        dbms.commit(tx)
        assert rids[16] == rids[0]  # wrapped onto the first slot
        assert dbms.fetch_row("ring", rids[0]) == (16, "v16")
        assert dbms.tables["ring"].wrapped

    def test_wrap_survives_crash(self):
        from repro.recovery.restart import crash_and_restart

        dbms = SimulatedDBMS(tiny_config(CachePolicy.FACE))
        schema = TableSchema(
            "ring", (int_col("n"),), ("n",), slots_per_page=4
        )
        dbms.create_table(schema, expected_rows=8)
        dbms.begin_load()
        dbms.finish_load()
        tx = dbms.begin()
        for n in range(12):
            dbms.insert_row(tx, "ring", (n,))
        dbms.commit(tx)
        crash_and_restart(dbms)
        heap = dbms.tables["ring"]
        assert dbms.fetch_row("ring", heap.rid_for_rownum(8)) == (8,)


class TestMultiTable:
    def test_transaction_spanning_tables_and_indexes(self, kv_dbms):
        second = TableSchema(
            "kv2", (int_col("k"), str_col("v", 8)), ("k",), slots_per_page=8
        )
        kv_dbms.create_table(second, expected_rows=32)
        kv_dbms.create_index("kv2_pk", "kv2", n_pages=2)
        tx = kv_dbms.begin()
        rid_a = kv_dbms.index_lookup("kv_pk", (1,))
        kv_dbms.update_row(tx, "kv", rid_a, (1, "linked"))
        rid_b = kv_dbms.insert_row(tx, "kv2", (1, "twin"))
        kv_dbms.index_insert(tx, "kv2_pk", (1,), rid_b)
        kv_dbms.abort(tx)
        assert kv_read(kv_dbms, 1) == (1, "v1")
        assert kv_dbms.index_lookup("kv2_pk", (1,)) is None

    def test_duplicate_table_registration_rejected(self, kv_dbms):
        with pytest.raises(CatalogError):
            kv_dbms.create_table(KV_SCHEMA, expected_rows=1)


class TestColdReads:
    def test_reading_never_written_growth_page_yields_empty(self, kv_dbms):
        info = kv_dbms.catalog.table("kv")
        empty_page_id = info.end_page - 1  # growth headroom, never loaded
        page = kv_dbms.read_page(empty_page_id)
        assert page.slots == {}
        assert page.lsn == 0

    def test_cold_read_charges_disk_once_then_caches(self, kv_dbms):
        info = kv_dbms.catalog.table("kv")
        empty_page_id = info.end_page - 1
        reads_before = kv_dbms.disk.device.stats.read_pages
        kv_dbms.read_page(empty_page_id)
        kv_dbms.read_page(empty_page_id)  # DRAM hit now
        assert kv_dbms.disk.device.stats.read_pages == reads_before + 1


class TestCommittedCounters:
    def test_commit_abort_counters(self, kv_dbms):
        kv_write(kv_dbms, 1, "a")
        tx = kv_dbms.begin()
        kv_dbms.abort(tx)
        assert kv_dbms.committed == 1
        assert kv_dbms.aborted == 1

    def test_empty_transaction_commits_cleanly(self, kv_dbms):
        tx = kv_dbms.begin()
        kv_dbms.commit(tx)
        assert kv_dbms.committed == 1
        assert kv_dbms.log.tail_length == 0
