"""Heap files: rid arithmetic, append cursor, wrap recycling."""

import pytest

from repro.db.catalog import Catalog
from repro.db.heap import HeapFile
from repro.db.schema import TableSchema, int_col
from repro.errors import CatalogError


def make_heap(n_rows=20, slots=5, first_offset=0) -> HeapFile:
    cat = Catalog()
    if first_offset:
        cat.create_table(
            TableSchema("pad", (int_col("x"),), ("x",), slots_per_page=1),
            expected_rows=first_offset,
        )
    info = cat.create_table(
        TableSchema("t", (int_col("x"),), ("x",), slots_per_page=slots),
        expected_rows=n_rows,
    )
    return HeapFile(info)


def test_rid_for_rownum_dense_mapping():
    heap = make_heap(slots=5, first_offset=3)
    assert heap.rid_for_rownum(0) == (3, 0)
    assert heap.rid_for_rownum(4) == (3, 4)
    assert heap.rid_for_rownum(5) == (4, 0)
    assert heap.rid_for_rownum(12) == (5, 2)


def test_rownum_for_rid_is_inverse():
    heap = make_heap(slots=5, first_offset=3)
    for n in range(18):
        assert heap.rownum_for_rid(heap.rid_for_rownum(n)) == n


def test_rownum_for_rid_validates():
    heap = make_heap(slots=5)
    with pytest.raises(CatalogError):
        heap.rownum_for_rid((999, 0))
    with pytest.raises(CatalogError):
        heap.rownum_for_rid((0, 5))
    with pytest.raises(CatalogError):
        heap.rid_for_rownum(-1)


def test_append_advances_and_counts():
    heap = make_heap(slots=5)
    rids = [heap.append_rid() for _ in range(7)]
    assert rids[0] == (0, 0)
    assert rids[6] == (1, 1)
    assert heap.info.row_count == 7
    assert not heap.wrapped


def test_append_wraps_and_recycles_oldest():
    heap = make_heap(n_rows=10, slots=5)  # capacity = 10 rows exactly
    for _ in range(10):
        heap.append_rid()
    rid = heap.append_rid()  # 11th row recycles slot 0
    assert rid == (0, 0)
    assert heap.wrapped


def test_used_page_ids_tracks_fill():
    heap = make_heap(n_rows=20, slots=5)
    assert list(heap.used_page_ids()) == []
    for _ in range(6):
        heap.append_rid()
    assert list(heap.used_page_ids()) == [0, 1]
    for _ in range(20):
        heap.append_rid()
    assert list(heap.used_page_ids()) == list(heap.page_ids())


def test_capacity_rows():
    assert make_heap(n_rows=20, slots=5).capacity_rows == 20
