"""FlashDevice: the write-spread penalty and batch behaviour."""

import pytest

from repro.storage.device import IOKind
from repro.storage.profiles import MLC_SAMSUNG_470
from repro.storage.ssd import PAGES_PER_BLOCK, FlashDevice


@pytest.fixture
def ssd() -> FlashDevice:
    return FlashDevice(MLC_SAMSUNG_470, capacity_pages=64 * PAGES_PER_BLOCK)


def test_append_only_writes_cost_sequential(ssd):
    ssd.write(0)
    t = ssd.write(1)
    assert t == pytest.approx(MLC_SAMSUNG_470.seq_write_time)
    assert ssd.write_spread == 0.0


def test_narrow_random_writes_are_cheap(ssd):
    """A random write burst confined to one block barely widens the spread,
    so the FTL absorbs it near sequential cost."""
    ssd.write(5)
    t = ssd.write(3)  # random (backwards) but same block
    assert t < 2 * MLC_SAMSUNG_470.seq_write_time + 1e-9


def test_wide_random_writes_approach_calibrated_cost(ssd):
    # Touch every block (twice, so the unnoted first write doesn't matter).
    for _ in range(2):
        for block in range(64):
            ssd.write(block * PAGES_PER_BLOCK + (block * 7) % PAGES_PER_BLOCK)
    assert ssd.write_spread == pytest.approx(1.0)
    t = ssd.write(17)
    assert t == pytest.approx(MLC_SAMSUNG_470.random_write_time, rel=0.05)


def test_spread_interpolates_between_seq_and_random(ssd):
    for block in range(32):  # half the blocks
        ssd.write(block * PAGES_PER_BLOCK)
    spread = ssd.write_spread
    assert 0.4 < spread < 0.6
    seq = MLC_SAMSUNG_470.seq_write_time
    rand = MLC_SAMSUNG_470.random_write_time
    t = ssd.write(10 * PAGES_PER_BLOCK + 5)
    assert t == pytest.approx(seq + spread * (rand - seq), rel=1e-6)


def test_batch_writes_never_pay_random_cost(ssd):
    for block in range(64):
        ssd.write(block * PAGES_PER_BLOCK)  # saturate spread
    t = ssd.write(999, npages=PAGES_PER_BLOCK)
    assert t == pytest.approx(PAGES_PER_BLOCK * MLC_SAMSUNG_470.seq_write_time)
    assert ssd.stats.ops[IOKind.SEQ_WRITE] >= 1


def test_batch_writes_do_not_widen_spread(ssd):
    before = ssd.write_spread
    ssd.write(100, npages=16)
    assert ssd.write_spread == before


def test_reads_do_not_affect_spread(ssd):
    ssd.write(0)
    ssd.write(1)
    for i in range(50):
        ssd.read((i * 37) % ssd.capacity_pages)
    assert ssd.write_spread == 0.0


def test_reset_stats_keeps_physical_spread(ssd):
    for block in range(64):
        ssd.write(block * PAGES_PER_BLOCK)
    spread = ssd.write_spread
    ssd.reset_stats()
    assert ssd.busy_time == 0.0
    assert ssd.write_spread == spread  # FTL state is physical, not a counter


def test_spread_window_recycles_old_blocks():
    ssd = FlashDevice(MLC_SAMSUNG_470, capacity_pages=4096 * PAGES_PER_BLOCK)
    # Phase 1: wide random writes.
    for i in range(2048):
        ssd.write((i * 97) % ssd.capacity_pages)
    wide = ssd.write_spread
    # Phase 2: long narrow-phase; the sliding window should forget phase 1.
    for i in range(10_000):
        ssd.write((i * 3) % PAGES_PER_BLOCK)
    assert ssd.write_spread < wide
