"""Remaining storage edge cases: batch wraps, profile math, IOStats."""

import pytest

from repro.storage.device import Device, IOKind
from repro.storage.profiles import MLC_SAMSUNG_470, DeviceProfile
from repro.storage.ssd import PAGES_PER_BLOCK, SPREAD_WINDOW, FlashDevice


class TestBatchBoundaries:
    def test_batch_exactly_at_device_end(self):
        dev = Device(MLC_SAMSUNG_470, 100)
        dev.read(90, 10)  # [90, 100): legal
        assert dev.stats.pages[IOKind.SEQ_READ] == 10

    def test_batch_one_past_end_rejected(self):
        from repro.errors import OutOfRangeError

        dev = Device(MLC_SAMSUNG_470, 100)
        with pytest.raises(OutOfRangeError):
            dev.read(91, 10)

    def test_back_to_back_batches_chain_sequentially(self):
        dev = Device(MLC_SAMSUNG_470, 1000)
        dev.write(0, 64)
        t = dev.write(64, 64)  # continues the stream
        assert t == pytest.approx(64 * MLC_SAMSUNG_470.seq_write_time)
        assert dev.stats.ops[IOKind.SEQ_WRITE] == 2


class TestProfileMath:
    def test_scaled_capacity_pages(self):
        small = MLC_SAMSUNG_470.scaled("cache", capacity_gb=1)
        assert small.capacity_pages == 1024**3 // 4096

    def test_custom_profile_roundtrip(self):
        profile = DeviceProfile(
            name="toy", random_read_iops=1000, random_write_iops=500,
            seq_read_mbps=100, seq_write_mbps=50, capacity_gb=1, price_usd=10,
        )
        assert profile.random_read_time == pytest.approx(1e-3)
        assert profile.random_write_penalty == pytest.approx(
            (1 / 500) / (4096 / 50e6)
        )


class TestSpreadWindowInternals:
    def test_window_eviction_keeps_counts_consistent(self):
        ssd = FlashDevice(MLC_SAMSUNG_470, 4 * SPREAD_WINDOW * PAGES_PER_BLOCK)
        ssd.write(0)
        # Far more random writes than the window holds.
        for i in range(3 * SPREAD_WINDOW):
            ssd.write((i * 7919) % ssd.capacity_pages)
        tracked = sum(ssd._recent_block_counts.values())
        assert tracked == len(ssd._recent_random_blocks) == SPREAD_WINDOW
        assert 0.0 < ssd.write_spread <= 1.0

    def test_single_block_device(self):
        ssd = FlashDevice(MLC_SAMSUNG_470, PAGES_PER_BLOCK // 2)
        ssd.write(0)
        ssd.write(5)  # random within the only block
        assert ssd.write_spread == 1.0  # 1 distinct block / min(1, window)


class TestIOStatsAccounting:
    def test_total_ops_and_pages(self):
        dev = Device(MLC_SAMSUNG_470, 100)
        dev.read(1)
        dev.read(2)
        dev.write(50, 4)
        assert dev.stats.total_ops == 3
        assert dev.stats.total_pages == 6
        assert dev.stats.read_pages == 2
        assert dev.stats.write_pages == 4
