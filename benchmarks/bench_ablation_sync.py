"""Ablation (Section 3.2, "Write-Back than Write-Through").

The paper argues write-back is strictly better than write-through for a
flash cache: write-through pays a disk write for *every* dirty eviction,
losing the entire write-reduction benefit.  The library keeps the rejected
alternative behind ``face_write_through`` so the claim can be measured.
"""

from __future__ import annotations

from repro.analysis.tables import format_table
from benchmarks.conftest import config_for, once, steady_cells

CACHE_FRACTION = 0.12

LABELS = {False: "FaCE+GSC (write-back)", True: "FaCE+GSC (write-through)"}


def _sweep():
    cells = steady_cells({
        label: config_for("FaCE+GSC", CACHE_FRACTION).with_(
            face_write_through=wt, label=label
        )
        for wt, label in LABELS.items()
    })
    return {wt: cells[label] for wt, label in LABELS.items()}


def test_ablation_writeback_vs_writethrough(benchmark):
    results = once(benchmark, _sweep)

    print()
    print(
        format_table(
            "Ablation - sync policy under FaCE+GSC (cache = 12% of DB)",
            ["policy", "tpmC", "flash hit %", "write red. %", "disk util %"],
            [
                (
                    r.name,
                    round(r.tpmc),
                    round(100 * r.flash_hit_rate, 1),
                    round(100 * r.write_reduction, 1),
                    round(100 * r.utilization["disk"], 1),
                )
                for r in results.values()
            ],
            width=26,
        )
    )

    write_back, write_through = results[False], results[True]
    # Identical read-side caching: hit rates match closely.
    assert abs(write_back.flash_hit_rate - write_through.flash_hit_rate) < 0.08
    # Write-through forfeits the write reduction...
    assert write_through.write_reduction < 0.1
    assert write_back.write_reduction > 0.4
    # ...and loses throughput on the disk-bound system.
    assert write_back.tpmc > 1.2 * write_through.tpmc
