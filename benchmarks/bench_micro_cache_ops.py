"""Micro-benchmarks of the hot cache-management operations.

Unlike the table/figure benches (which run once and report *simulated*
metrics), these measure real Python time with pytest-benchmark's normal
multi-round protocol — they guard the simulator's own performance, which
bounds how large an experiment the harness can afford.
"""

from __future__ import annotations

import itertools

import pytest

from repro.flashcache.group import GroupSecondChanceCache
from repro.flashcache.lc import LazyCleaningCache
from repro.flashcache.mvfifo import MvFifoCache
from repro.storage.hdd import DiskDevice
from repro.storage.profiles import HDD_CHEETAH_15K, MLC_SAMSUNG_470
from repro.storage.ssd import FlashDevice
from repro.storage.volume import Volume
from tests.conftest import make_frame

CAPACITY = 2048


def _volumes():
    flash = Volume(FlashDevice(MLC_SAMSUNG_470, CAPACITY + 256))
    disk = Volume(DiskDevice(HDD_CHEETAH_15K, 1 << 20))
    return flash, disk


@pytest.fixture
def mvfifo():
    flash, disk = _volumes()
    return MvFifoCache(flash, disk, CAPACITY, segment_entries=256)


@pytest.fixture
def gsc():
    flash, disk = _volumes()
    return GroupSecondChanceCache(flash, disk, CAPACITY, segment_entries=256)


@pytest.fixture
def lc():
    flash, disk = _volumes()
    return LazyCleaningCache(flash, disk, CAPACITY)


def test_micro_mvfifo_evict_throughput(benchmark, mvfifo):
    counter = itertools.count()

    def evict():
        mvfifo.on_dram_evict(make_frame(next(counter) % 4096, dirty=True, fdirty=True))

    benchmark(evict)


def test_micro_gsc_evict_throughput(benchmark, gsc):
    counter = itertools.count()

    def evict():
        gsc.on_dram_evict(make_frame(next(counter) % 4096, dirty=True, fdirty=True))

    benchmark(evict)


def test_micro_lc_evict_throughput(benchmark, lc):
    counter = itertools.count()

    def evict():
        lc.on_dram_evict(make_frame(next(counter) % 4096, dirty=True, fdirty=True))

    benchmark(evict)


def test_micro_mvfifo_hit_lookup(benchmark, mvfifo):
    for i in range(CAPACITY // 2):
        mvfifo.on_dram_evict(make_frame(i, dirty=True, fdirty=True))
    counter = itertools.count()

    def lookup():
        mvfifo.lookup_fetch(next(counter) % (CAPACITY // 2))

    benchmark(lookup)


def test_micro_crash_recover_roundtrip(benchmark, mvfifo):
    for i in range(CAPACITY):
        mvfifo.on_dram_evict(make_frame(i, dirty=True, fdirty=True))

    def roundtrip():
        mvfifo.crash()
        mvfifo.recover()

    benchmark(roundtrip)
