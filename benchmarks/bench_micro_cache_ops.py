"""Micro-benchmarks of the hot cache-management operations.

Unlike the table/figure benches (which run once and report *simulated*
metrics), these measure real Python time with pytest-benchmark's normal
multi-round protocol — they guard the simulator's own performance, which
bounds how large an experiment the harness can afford.
"""

from __future__ import annotations

import itertools

import pytest

from repro.buffer.frame import Frame
from repro.db.page import Page
from repro.flashcache.group import GroupSecondChanceCache
from repro.flashcache.lc import LazyCleaningCache
from repro.flashcache.mvfifo import MvFifoCache
from repro.storage.hdd import DiskDevice
from repro.storage.profiles import HDD_CHEETAH_15K, MLC_SAMSUNG_470
from repro.storage.ssd import FlashDevice
from repro.storage.volume import Volume
from tests.conftest import make_frame

CAPACITY = 2048


def _volumes():
    flash = Volume(FlashDevice(MLC_SAMSUNG_470, CAPACITY + 256))
    disk = Volume(DiskDevice(HDD_CHEETAH_15K, 1 << 20))
    return flash, disk


@pytest.fixture
def mvfifo():
    flash, disk = _volumes()
    return MvFifoCache(flash, disk, CAPACITY, segment_entries=256)


@pytest.fixture
def gsc():
    flash, disk = _volumes()
    return GroupSecondChanceCache(flash, disk, CAPACITY, segment_entries=256)


@pytest.fixture
def lc():
    flash, disk = _volumes()
    return LazyCleaningCache(flash, disk, CAPACITY)


def test_micro_mvfifo_evict_throughput(benchmark, mvfifo):
    counter = itertools.count()

    def evict():
        mvfifo.on_dram_evict(make_frame(next(counter) % 4096, dirty=True, fdirty=True))

    benchmark(evict)


def test_micro_gsc_evict_throughput(benchmark, gsc):
    counter = itertools.count()

    def evict():
        gsc.on_dram_evict(make_frame(next(counter) % 4096, dirty=True, fdirty=True))

    benchmark(evict)


def test_micro_lc_evict_throughput(benchmark, lc):
    counter = itertools.count()

    def evict():
        lc.on_dram_evict(make_frame(next(counter) % 4096, dirty=True, fdirty=True))

    benchmark(evict)


def test_micro_mvfifo_hit_lookup(benchmark, mvfifo):
    for i in range(CAPACITY // 2):
        mvfifo.on_dram_evict(make_frame(i, dirty=True, fdirty=True))
    counter = itertools.count()

    def lookup():
        mvfifo.lookup_fetch(next(counter) % (CAPACITY // 2))

    benchmark(lookup)


def test_micro_crash_recover_roundtrip(benchmark, mvfifo):
    for i in range(CAPACITY):
        mvfifo.on_dram_evict(make_frame(i, dirty=True, fdirty=True))

    def roundtrip():
        mvfifo.crash()
        mvfifo.recover()

    benchmark(roundtrip)


# -- page freeze/thaw (the eviction/enqueue data movement) --------------------
#
# Real TPC-C pages carry tens of rows, so the dict work per Page <-> PageImage
# conversion is the dominant constant of the eviction and fetch paths.  These
# two guards measure it directly: repeated snapshots of an unmodified page
# (checkpoints, write-through, conditional enqueue) and the flash-hit
# thaw -> clean-evict round trip.

_FAT_SLOTS = {s: ("row", s, "payload-column", 4096 + s) for s in range(64)}


def _fat_page(page_id: int) -> Page:
    return Page(page_id, lsn=page_id * 10 + 1, slots=dict(_FAT_SLOTS))


def test_micro_page_repeat_snapshot(benchmark):
    page = _fat_page(1)

    benchmark(page.to_image)


def test_micro_page_freeze_thaw_roundtrip(benchmark):
    image = _fat_page(2).to_image()

    def roundtrip():
        page = image.to_page()
        return page.to_image()

    benchmark(roundtrip)


def test_micro_flash_hit_thaw(benchmark, mvfifo):
    for i in range(256):
        page = _fat_page(i)
        mvfifo.on_dram_evict(Frame(page=page, dirty=True, fdirty=True))
    counter = itertools.count()

    def hit_and_thaw():
        image, _dirty = mvfifo.lookup_fetch(next(counter) % 256)
        return image.to_page()

    benchmark(hit_and_thaw)
