"""Table 2: the flash-caching design landscape, measured.

The paper's Table 2 contrasts the design dimensions of Exadata, TAC, LC and
FaCE (when pages enter, what is cached, sync policy, replacement).  This
bench runs all of them — plus GR/GSC — on the same workload and cache size,
so the design differences show up as measured behaviour:

* on-entry write-through caches (Exadata, TAC) reduce *reads* only:
  write reduction = 0;
* the write-back caches (LC, FaCE family) absorb most dirty evictions;
* TAC pays two random metadata flash writes per cache entry/exit
  (Section 4.1's criticism);
* FaCE turns its flash writes sequential; LC's are random in place.
"""

from __future__ import annotations

from repro.analysis.tables import format_table
from repro.core.config import CachePolicy
from benchmarks.conftest import config_for, once, steady_cells

CACHE_FRACTION = 0.12

#: (display name, policy, Table 2 design summary)
LANDSCAPE = (
    ("Exadata", CachePolicy.EXADATA, "entry/clean/thru/LRU"),
    ("TAC", CachePolicy.TAC, "entry/both/thru/temp"),
    ("LC", CachePolicy.LC, "exit/both/back/LRU-2"),
    ("FaCE", CachePolicy.FACE, "exit/both/back/FIFO"),
    ("FaCE+GSC", CachePolicy.FACE_GSC, "exit/both/back/FIFO+GSC"),
)


def test_table2_design_landscape(benchmark):
    def run():
        cells = steady_cells({
            name: config_for("LC", CACHE_FRACTION).with_(cache_policy=policy)
            for name, policy, _ in LANDSCAPE
        })
        return {
            name: (design, cells[name],
                   int(cells[name].cache_stats["metadata_writes"]))
            for name, _, design in LANDSCAPE
        }

    results = once(benchmark, run)

    print()
    print(
        format_table(
            "Table 2 (measured) - design choices and their consequences",
            ["policy", "design", "tpmC", "flash hit %", "write red. %",
             "meta writes"],
            [
                (
                    name,
                    design,
                    round(r.tpmc),
                    round(100 * r.flash_hit_rate, 1),
                    round(100 * r.write_reduction, 1),
                    meta,
                )
                for name, (design, r, meta) in results.items()
            ],
            width=17,
        )
    )

    # Write-through caches cannot reduce writes; write-back caches do.
    assert results["Exadata"][1].write_reduction == 0.0
    assert results["TAC"][1].write_reduction == 0.0
    assert results["LC"][1].write_reduction > 0.3
    assert results["FaCE"][1].write_reduction > 0.3
    # TAC pays persistent-metadata writes; nobody else does (FaCE's
    # metadata goes in large segments, not per-entry random writes).
    assert results["TAC"][2] > 1000
    # The FaCE family tops the landscape on this disk-bound system.
    best_baseline = max(
        results[n][1].tpmc for n in ("Exadata", "TAC", "LC")
    )
    assert results["FaCE+GSC"][1].tpmc > best_baseline
