"""Ablation (Section 3.3): GSC scan depth.

The paper bounds the Group Second Chance scan depth at "the number of pages
(typically 64 or 128) in a flash memory block".  The sweep shows why the
choice is safe: batching wins over depth-1 replacement, and the curve is
flat across practical depths.
"""

from __future__ import annotations

from repro.analysis.tables import format_table
from benchmarks.conftest import config_for, once, steady_cells

CACHE_FRACTION = 0.12
DEPTHS = (16, 32, 64, 128)


def _sweep():
    cells = steady_cells({
        str(d): config_for("FaCE+GSC", CACHE_FRACTION).with_(scan_depth=d)
        for d in DEPTHS
    })
    return {d: cells[str(d)] for d in DEPTHS}


def test_ablation_gsc_scan_depth(benchmark):
    results = once(benchmark, _sweep)

    print()
    print(
        format_table(
            "Ablation - GSC scan depth (cache = 12% of DB)",
            ["depth", "tpmC", "flash hit %", "flash util %"],
            [
                (
                    d,
                    round(r.tpmc),
                    round(100 * r.flash_hit_rate, 1),
                    round(100 * r.flash_utilization, 1),
                )
                for d, r in results.items()
            ],
        )
    )

    tpmcs = [results[d].tpmc for d in DEPTHS]
    # The paper's claim: any block-sized depth works — the curve is flat
    # (within 25 % across an 8x depth range).
    assert max(tpmcs) < 1.25 * min(tpmcs)
    # Hit rates are not materially hurt by deeper scans (second chances
    # protect the warm pages).
    hits = [results[d].flash_hit_rate for d in DEPTHS]
    assert max(hits) - min(hits) < 0.08
