"""Benchmark-regression recorder: ``python benchmarks/record.py``.

Runs a fixed, small TINY-scale sweep through the parallel engine and writes
``BENCH_sweep.json`` next to this file with:

* per-cell wall-clock seconds (host time) and simulated transaction rate,
* aggregate wall-seconds-per-cell for the serial and parallel passes and
  the resulting speedup,
* a determinism flag (parallel results bit-identical to serial),
* a bounded history of previous records for trend comparison.

If the new serial wall-seconds-per-cell regresses more than
``REGRESSION_TOLERANCE`` against the previous record, the script warns (and
exits non-zero with ``--strict``).  Intended uses:

* locally, after a perf-affecting change: ``python benchmarks/record.py``
* in CI as a cheap smoke: ``python benchmarks/record.py --smoke --jobs 2``
* diagnosing a regressed cell: ``python benchmarks/record.py --obs`` adds a
  per-cell observability extract (cache/buffer/WAL counters) to the record,
  so the *why* behind a wall-seconds or tpmC shift is in the JSON, not lost
* ``--fast`` additionally times the trace-replay fast path against the full
  serial pass: one cold grid pass (includes recording the boundary trace),
  the one-time trace load + decode cost measured separately (``prepare``),
  and one warm per-cell pass whose speedup over full serial execution is
  gated at ``MIN_WARM_FAST_SPEEDUP`` (8x) under ``--strict``; with
  ``--jobs > 1`` it also runs a multi-worker pass served from one shared
  ``/dev/shm`` trace segment, recording shared-cell counts and gating on
  zero leaked segments; a parity flag asserts every fast variant is
  bit-identical to full execution
* ``--retarget`` additionally runs the cross-scale retargeting pass: one
  BENCH-scale donor recording drives the whole TINY grid with zero native
  re-recording, the remap-only re-derivation is timed against a cold
  native recording (gated at ``MIN_RETARGET_SPEEDUP``, 3x), and the
  two-tier parity evidence from ``repro.sim.retarget.verify_retarget``
  (identity bit-parity + statistical skew/hit-ratio gates) is embedded in
  the record under ``retarget``
* ``--ablation`` records the replay-driven ablation engine instead: a dense
  TINY knob grid (policy x admission x DRAM policy x scan depth; 64 cells,
  ``--smoke`` shrinks it to a 2-axis 4-cell grid) served from one shared
  boundary trace, written to ``BENCH_ablation.json`` with per-axis
  sensitivities, a replay-parity flag from full-execution spot checks, and
  the persisted trace's compression ratio — the two acceptance gates
  (``parity`` true, ``compression_ratio >= 3``) fail the run under
  ``--strict``
* ``--latency`` records the closed-loop service grid instead: a TINY
  {policy} x {client count} matrix (1 -> 50 -> 500 -> 5000 clients) run as
  :class:`~repro.sim.service.ServiceScenario` cells over the shared
  boundary trace, written to ``BENCH_latency.json`` with per-cell
  throughput + p50/p95/p99 latency, each policy's saturation knee (the
  first client count whose throughput gain falls under
  ``KNEE_GAIN_THRESHOLD``), and a replay-parity flag — the acceptance
  gates (``parity`` true, monotone p50 <= p95 <= p99 per cell, every
  policy saturating within the swept range) fail the run under
  ``--strict``
* ``--scan`` records the scan-resistance grid instead: a TINY
  {policy} x {scan mix} matrix driving the ``tpch-scan`` registry workload
  (pure sequential scans, then the HTAP probe/update preset) over
  {mvFIFO+GSC, LRU-2, LC}, written to ``BENCH_scan.json`` with per-cell
  steady-state flash hit ratios and throughput — the acceptance gates
  (``parity`` true, zero natively recorded transactions in the timed
  replay pass, and GSC's pure-scan hit ratio strictly above LRU-2's: the
  paper's §3.3 scan-resistance claim) fail the run under ``--strict``
* ``--recovery`` records the Table-6-style crash/restart grid instead: a
  BENCH-scale {policy} x {checkpoint interval} crash matrix run as
  :class:`~repro.sim.scenario.CrashRecoveryScenario` cells over the shared
  boundary trace, written to ``BENCH_recovery.json`` with per-cell restart
  reports, FaCE-vs-baseline restart speedups, and a replay-parity flag from
  full-execution spot checks — the acceptance gates (``parity`` true, FaCE
  restart at least ``MIN_RESTART_SPEEDUP`` x faster than the LC and
  HDD-only baselines at every interval) fail the run under ``--strict``

Any cell whose wall time regresses more than ``CELL_REGRESSION_FACTOR``
(2x) against the previous record also warns — that is the CI gate.

The script is standalone — it does not import pytest or the benchmarks
conftest — so it can run anywhere the package can.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

# Standalone bootstrap: make `repro` importable when run as a script from
# a checkout (PYTHONPATH=src not required).
_SRC = Path(__file__).resolve().parent.parent / "src"
if _SRC.is_dir() and str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.core.config import CachePolicy, scaled_reference_config  # noqa: E402
from repro.obs import OBS  # noqa: E402
from repro.sim.parallel import CellSpec, run_cells  # noqa: E402
from repro.sim.replay import (  # noqa: E402
    cached_trace_exists,
    clear_recorders,
    prepare_replay,
)
from repro.sim.trace import leaked_shared_segments  # noqa: E402
from repro.sim.warmstate import snapshot_load_seconds  # noqa: E402
from repro.tpcc.loader import estimate_db_pages  # noqa: E402
from repro.tpcc.scale import BENCH, TINY  # noqa: E402

RECORD_PATH = Path(__file__).resolve().parent / "BENCH_sweep.json"
ABLATION_RECORD_PATH = Path(__file__).resolve().parent / "BENCH_ablation.json"
RECOVERY_RECORD_PATH = Path(__file__).resolve().parent / "BENCH_recovery.json"
LATENCY_RECORD_PATH = Path(__file__).resolve().parent / "BENCH_latency.json"
SCAN_RECORD_PATH = Path(__file__).resolve().parent / "BENCH_scan.json"
STORAGE_RECORD_PATH = Path(__file__).resolve().parent / "BENCH_storage.json"
HISTORY_LIMIT = 20
#: Warn when serial wall-seconds-per-cell grows past previous * (1 + tol).
REGRESSION_TOLERANCE = 0.30
#: Warn when any single cell's wall time grows past previous * factor.
#: Deliberately loose: per-cell times on shared CI runners are noisy, and
#: the gate exists to catch order-of-magnitude engine regressions.
CELL_REGRESSION_FACTOR = 2.0
#: The warm fast-grid pass (pure per-cell replay through the batched
#: kernel, one-time trace decode paid separately) must beat full serial
#: execution by at least this factor.  Host speed cancels out of the
#: ratio, so the gate is stable across runners.
MIN_WARM_FAST_SPEEDUP = 8.0

POLICIES = (CachePolicy.LC, CachePolicy.FACE, CachePolicy.FACE_GR,
            CachePolicy.FACE_GSC)
FRACTIONS = (0.08, 0.16)
MEASURE_TX = 1500
SEED = 42


def sweep_specs(smoke: bool = False, collect_obs: bool = False) -> list[CellSpec]:
    db_pages = estimate_db_pages(TINY)
    policies = POLICIES[:1] if smoke else POLICIES
    fractions = FRACTIONS[:2] if smoke else FRACTIONS
    return [
        CellSpec(
            key=(policy.value, fraction),
            config=scaled_reference_config(
                db_pages, cache_fraction=fraction, policy=policy
            ),
            scale=TINY,
            seed=SEED,
            measure_transactions=MEASURE_TX,
            collect_obs=collect_obs,
        )
        for policy in policies
        for fraction in fractions
    ]


def timed_pass(specs: list[CellSpec], jobs: int) -> tuple[float, dict]:
    start = time.perf_counter()
    cells = run_cells(specs, jobs=jobs)
    return time.perf_counter() - start, cells


#: Metric prefixes worth carrying into the benchmark record when ``--obs``
#: is on: enough to explain *why* a cell's throughput moved, small enough
#: to keep BENCH_sweep.json readable.
OBS_PREFIXES = ("flashcache.", "buffer.pool.", "wal.")


def obs_extract(result) -> dict[str, float] | None:
    """Counters/gauges from the cell's snapshot under :data:`OBS_PREFIXES`."""
    if result.obs is None:
        return None
    flat = result.obs.as_flat()
    return {
        name: flat[name]
        for name in sorted(flat)
        if name.startswith(OBS_PREFIXES) and flat[name]
    }


def cell_rows(cells: dict, wall_by_key: dict) -> list[dict]:
    rows = []
    for key, result in cells.items():
        row = {
            "key": list(key),
            "wall_seconds": round(wall_by_key.get(key, 0.0), 4),
            "tpmc": round(result.tpmc, 2),
            "sim_tx_per_sec": round(
                result.transactions / result.wall_seconds
                if result.wall_seconds > 0 else 0.0,
                2,
            ),
            "flash_hit_rate": round(result.flash_hit_rate, 6),
        }
        extract = obs_extract(result)
        if extract is not None:
            row["obs"] = extract
        rows.append(row)
    return rows


def _strip_obs(cells: dict) -> dict:
    """Results without snapshots, for fast-vs-full parity: the ``replay.*``
    namespace describes the replay machinery and has no full-run twin."""
    import dataclasses

    return {key: dataclasses.replace(r, obs=None) for key, r in cells.items()}


def shared_pass(specs: list[CellSpec], serial_cells: dict, jobs: int) -> dict:
    """Multi-worker pass over one shared /dev/shm trace segment.

    Recorded for correctness, not gated on speed: single-CPU hosts cannot
    win wall-clock from local fan-out, but the record must show the shared
    path actually serving cells, zero exhaustion fallbacks in the steady
    case, and — the hard gate — zero leaked segments after the sweep.
    """
    was_enabled = OBS.enabled
    OBS.clear()
    OBS.enable()
    try:
        start = time.perf_counter()
        cells = run_cells(specs, jobs=jobs, fast=True)
        wall = time.perf_counter() - start
        shared_cells = OBS.counter("replay.shared.cells").value
        exhausted = OBS.counter("replay.shared.exhausted").value
    finally:
        OBS.clear()
        if not was_enabled:
            OBS.disable()
    return {
        "jobs": jobs,
        "wall_seconds": round(wall, 3),
        "shared_cells": int(shared_cells),
        "exhausted": int(exhausted),
        "parity": _strip_obs(cells) == _strip_obs(serial_cells),
        "leaked_segments": leaked_shared_segments(),
    }


def fast_passes(
    specs: list[CellSpec], serial_cells: dict, serial_wall: float, jobs: int = 1
) -> dict:
    """Time the trace-replay fast path: cold grid pass, then warm per-cell.

    Between the two, the one-time trace preparation (load + decode of the
    persisted boundary trace) is re-paid from scratch and recorded under
    ``prepare`` — so the warm per-cell figures are pure kernel replay and
    the fixed cost is visible in the record instead of silently folded
    into whichever cell runs first.
    """
    cold_start = time.perf_counter()
    cold_cells = run_cells(specs, jobs=1, fast=True)
    cold_wall = time.perf_counter() - cold_start

    prepare = None
    if all(cached_trace_exists(spec.scale, spec.seed) for spec in specs):
        clear_recorders()
        prep = prepare_replay(specs)
        prepare = {
            "seconds": round(prep["seconds"], 3),
            "retarget_seconds": round(prep["retarget_seconds"], 4),
            "groups": [
                {**group, "seconds": round(group["seconds"], 3)}
                for group in prep["groups"]
            ],
        }

    warm_by_key: dict = {}
    warm_cells: dict = {}
    warm_start = time.perf_counter()
    for spec in specs:
        t0 = time.perf_counter()
        warm_cells.update(run_cells([spec], jobs=1, fast=True))
        warm_by_key[spec.key] = time.perf_counter() - t0
    warm_wall = time.perf_counter() - warm_start

    parity = (
        _strip_obs(cold_cells) == _strip_obs(serial_cells)
        and _strip_obs(warm_cells) == _strip_obs(serial_cells)
    )
    record = {
        "cold_wall_seconds": round(cold_wall, 3),
        "warm_wall_seconds": round(warm_wall, 3),
        "warm_wall_seconds_per_cell": round(warm_wall / len(specs), 4),
        "speedup_cold_vs_serial": round(serial_wall / cold_wall, 3)
        if cold_wall > 0 else None,
        "speedup_warm_vs_serial": round(serial_wall / warm_wall, 3)
        if warm_wall > 0 else None,
        "parity": parity,
        "snapshot_load_seconds": round(snapshot_load_seconds(), 3),
        "cells": [
            {"key": list(key), "wall_seconds": round(wall, 4)}
            for key, wall in warm_by_key.items()
        ],
    }
    if prepare is not None:
        record["prepare"] = prepare
    if jobs > 1:
        record["shared"] = shared_pass(specs, serial_cells, jobs)
    return record


def run_record(
    jobs: int, smoke: bool, collect_obs: bool = False, fast: bool = False
) -> dict:
    specs = sweep_specs(smoke, collect_obs=collect_obs)

    # Serial pass, timing each cell individually for the per-cell record.
    wall_by_key: dict = {}
    serial_cells: dict = {}
    serial_start = time.perf_counter()
    for spec in specs:
        t0 = time.perf_counter()
        serial_cells.update(run_cells([spec], jobs=1))
        wall_by_key[spec.key] = time.perf_counter() - t0
    serial_wall = time.perf_counter() - serial_start

    record = {
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "mode": "smoke" if smoke else "full",
        "cells": cell_rows(serial_cells, wall_by_key),
        "serial": {
            "wall_seconds": round(serial_wall, 3),
            "wall_seconds_per_cell": round(serial_wall / len(specs), 4),
        },
    }

    if fast:
        record["fast"] = fast_passes(specs, serial_cells, serial_wall, jobs=jobs)

    if jobs > 1:
        parallel_wall, parallel_cells = timed_pass(specs, jobs)
        record["parallel"] = {
            "jobs": jobs,
            "wall_seconds": round(parallel_wall, 3),
            "wall_seconds_per_cell": round(parallel_wall / len(specs), 4),
            "speedup_vs_serial": round(serial_wall / parallel_wall, 3)
            if parallel_wall > 0 else None,
        }
        record["deterministic"] = parallel_cells == serial_cells
    else:
        record["deterministic"] = True  # vacuous: single pass

    return record


def compare_with_previous(record: dict, previous: dict | None) -> list[str]:
    warnings = []
    if previous is None:
        return warnings
    if previous.get("mode") != record.get("mode"):
        # A smoke run against a committed full-grid baseline (CI's shape)
        # measures different cells; rate comparisons would be noise.  The
        # absolute fast-path gates (fast_gate_warnings) still apply.
        if not record.get("deterministic", True):
            warnings.append("parallel results are NOT bit-identical to serial")
        return warnings
    prev_rate = previous.get("serial", {}).get("wall_seconds_per_cell")
    new_rate = record["serial"]["wall_seconds_per_cell"]
    if prev_rate and new_rate > prev_rate * (1 + REGRESSION_TOLERANCE):
        warnings.append(
            f"serial wall-seconds/cell regressed: {prev_rate:.3f}s -> "
            f"{new_rate:.3f}s (> {REGRESSION_TOLERANCE:.0%} tolerance)"
        )
    prev_cells = {
        tuple(row["key"]): row.get("wall_seconds")
        for row in previous.get("cells", [])
    }
    for row in record["cells"]:
        prev_wall = prev_cells.get(tuple(row["key"]))
        if prev_wall and row["wall_seconds"] > prev_wall * CELL_REGRESSION_FACTOR:
            warnings.append(
                f"cell {row['key']} wall time regressed: {prev_wall:.3f}s -> "
                f"{row['wall_seconds']:.3f}s (> {CELL_REGRESSION_FACTOR:.0f}x)"
            )
    if not record.get("deterministic", True):
        warnings.append("parallel results are NOT bit-identical to serial")
    return warnings


def fast_gate_warnings(record: dict) -> list[str]:
    """Absolute gates on the fast-path record (no previous record needed)."""
    fast = record.get("fast")
    if not fast:
        return []
    warnings = []
    if not fast["parity"]:
        warnings.append("fast-path results are NOT bit-identical to full execution")
    warm = fast.get("speedup_warm_vs_serial")
    if warm is not None and warm < MIN_WARM_FAST_SPEEDUP:
        warnings.append(
            f"warm fast-grid speedup {warm}x over full serial is below the "
            f"{MIN_WARM_FAST_SPEEDUP:.0f}x floor"
        )
    shared = fast.get("shared")
    if shared is not None:
        if not shared["parity"]:
            warnings.append(
                "shared-trace multi-worker results are NOT bit-identical to serial"
            )
        if shared["shared_cells"] == 0:
            warnings.append(
                "shared-memory trace path never served a cell in the "
                "multi-worker pass"
            )
        if shared["leaked_segments"]:
            warnings.append(
                f"leaked /dev/shm trace segments after the sweep: "
                f"{shared['leaked_segments']}"
            )
    return warnings


# -- retarget record ---------------------------------------------------------

#: Re-deriving the grid's replay source from a live donor recording (a
#: remap over the token stream) must beat recording the same transactions
#: natively at the target scale by at least this factor.  Measured: the
#: remap runs in tens of milliseconds against ~1s of native recording, so
#: the floor has an order of magnitude of headroom.
MIN_RETARGET_SPEEDUP = 3.0


def run_retarget_pass(jobs: int, smoke: bool) -> dict:
    """One BENCH donor recording drives the whole TINY grid; time and gate it.

    The economics claim of cross-scale retargeting, measured end to end:

    1. wipe every native (TINY, SEED) trace source, so nothing can serve
       the grid except the donor;
    2. seed — record one BENCH-scale donor and run the grid once from it
       (this also warms the per-``(scale, seed)`` database forks);
    3. the timed claim — re-derive the grid's replay source from the live
       donor (``prepare_replay`` pays the full remap up front) and replay
       the grid with observability on, asserting **zero** natively recorded
       transactions;
    4. the baseline — record the same number of transactions natively at
       TINY with the cache off, which is what every fresh ``(scale, seed)``
       grid would otherwise pay;
    5. evidence — :func:`repro.sim.retarget.verify_retarget` runs both
       parity tiers (identity bit-parity, statistical skew/hit-ratio
       gates) and its full output is embedded in the record.
    """
    import dataclasses

    from repro.sim.replay import (
        TraceRecorder,
        get_recorder,
        remove_cached_traces,
        save_recorded_traces,
    )
    from repro.sim.retarget import clear_retargeted, verify_retarget

    specs = [
        dataclasses.replace(spec, trace_donor=BENCH)
        for spec in sweep_specs(smoke)
    ]

    # 1. Clean slate: no native TINY trace, live or persisted.
    clear_recorders()
    removed = remove_cached_traces(scale=TINY, seed=SEED)

    # 2. Seed: one donor recording covers every cell's consumption.
    donor_start = time.perf_counter()
    donor = get_recorder(BENCH, SEED)
    seeded = run_cells(specs, jobs=1, fast=True)
    donor_record_seconds = time.perf_counter() - donor_start
    needed = max(r.warmup_transactions for r in seeded.values()) + MEASURE_TX
    save_recorded_traces()

    # 3. The timed claim: remap-only re-derivation, then a replay-served
    # grid that records nothing natively.
    clear_retargeted()
    prep_start = time.perf_counter()
    prep = prepare_replay(specs)
    retarget_prepare_seconds = time.perf_counter() - prep_start

    was_enabled = OBS.enabled
    OBS.clear()
    OBS.enable()
    try:
        grid_start = time.perf_counter()
        cells = run_cells(specs, jobs=1, fast=True)
        grid_wall = time.perf_counter() - grid_start
        native_recorded = OBS.counter("replay.trace.recorded_transactions").value
        retargeted_cells = OBS.counter("replay.retarget.cells").value
    finally:
        OBS.clear()
        if not was_enabled:
            OBS.disable()

    # 4. Baseline: a fresh native recording of the same transaction span.
    cold_start = time.perf_counter()
    TraceRecorder(TINY, SEED, use_cache=False).ensure(needed)
    cold_record_seconds = time.perf_counter() - cold_start

    # 5. Two-tier parity evidence (records a native TINY trace to compare
    # against, so it runs outside the timed region).
    verify = verify_retarget(TINY, BENCH, seed=SEED, transactions=MEASURE_TX)
    save_recorded_traces()

    speedup = (
        round(cold_record_seconds / retarget_prepare_seconds, 2)
        if retarget_prepare_seconds > 0
        else None
    )
    return {
        "donor_scale": "bench",
        "target_scale": "tiny",
        "grid_cells": len(specs),
        "native_traces_removed": len(removed),
        "donor_record_seconds": round(donor_record_seconds, 3),
        "donor_transactions": donor.longest_trace().n_transactions,
        "trace_transactions_needed": needed,
        "retarget_prepare_seconds": round(retarget_prepare_seconds, 4),
        "remap_seconds": round(prep["retarget_seconds"], 4),
        "grid_wall_seconds": round(grid_wall, 3),
        "native_recorded_transactions": int(native_recorded),
        "retargeted_cells": int(retargeted_cells),
        "cold_record_seconds": round(cold_record_seconds, 3),
        "speedup_vs_cold_record": speedup,
        "deterministic": _strip_obs(cells) == _strip_obs(seeded),
        "identity_parity": verify["identity_parity"],
        "verify": verify,
    }


def retarget_warnings(record: dict) -> list[str]:
    """Acceptance gates on the retarget pass (``--strict`` fails on any)."""
    retarget = record.get("retarget")
    if not retarget:
        return []
    warnings = []
    if retarget["native_recorded_transactions"]:
        warnings.append(
            f"retarget grid recorded "
            f"{retarget['native_recorded_transactions']} native transactions "
            f"(expected 0: every cell should replay from the donor)"
        )
    if not retarget["retargeted_cells"]:
        warnings.append("retarget pass never served a cell from the donor trace")
    speedup = retarget.get("speedup_vs_cold_record")
    if speedup is not None and speedup < MIN_RETARGET_SPEEDUP:
        warnings.append(
            f"retarget prepare speedup {speedup}x over cold native recording "
            f"is below the {MIN_RETARGET_SPEEDUP:.0f}x floor"
        )
    if not retarget["identity_parity"]:
        warnings.append(
            "identity retarget is NOT bit-identical to direct replay"
        )
    if not retarget["verify"]["passed"]:
        warnings.append(
            "statistical retarget verification failed (see the embedded "
            "verify evidence)"
        )
    if not retarget["deterministic"]:
        warnings.append(
            "retargeted grid results changed between the seeding and timed "
            "passes"
        )
    return warnings


# -- ablation record ---------------------------------------------------------

#: The dense grid the full ablation record runs: 4 x 2 x 2 x 4 = 64 cells,
#: every one sharing the single (TINY, SEED) boundary trace.  Axes are
#: chosen for signal at TINY scale (the 103-page database sits entirely
#: inside the floor-sized flash cache, so size/eviction knobs are inert
#: there — those ablations live in benchmarks/bench_ablation_*.py at BENCH
#: scale).  ``scan_depth`` is kept although flat: a flat curve across an
#: 8x depth range is the paper's own §3.3 claim.
ABLATION_AXES = {
    "policy": ("face", "face+gr", "face+gsc", "lc"),
    "admission": None,
    "dram": None,
    "scan_depth": (16, 32, 64, 128),
}
#: CI smoke: a 2-axis, 4-cell grid — same machinery, minutes cheaper.
SMOKE_ABLATION_AXES = {"admission": None, "sync": None}
ABLATION_MEASURE_TX = 600
#: The compressed persisted trace must beat the raw array encoding by at
#: least this factor (the trace-compression acceptance gate).
MIN_COMPRESSION_RATIO = 3.0


def run_ablation_record(jobs: int, smoke: bool) -> dict:
    """Run the ablation grid via replay; record sensitivities + gates."""
    from repro.sim.ablation import AblationStudy, verify_parity
    from repro.sim.experiment import ExperimentConfig
    from repro.sim.replay import persisted_trace_stats

    base = ExperimentConfig(
        scale=TINY, seed=SEED, measure_transactions=ABLATION_MEASURE_TX
    )
    study = AblationStudy(base, SMOKE_ABLATION_AXES if smoke else ABLATION_AXES)
    results = study.run(jobs=jobs, fast=True)
    parity, mismatched = verify_parity(study, results, sample=2 if smoke else 3)

    record = {
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "mode": "smoke" if smoke else "full",
        **results.to_record(),
        "replay_parity": parity,
    }
    if mismatched:
        record["parity_mismatches"] = [list(key) for key in mismatched]
    stats = persisted_trace_stats(base.scale, base.seed)
    if stats is not None and stats.get("body_bytes"):
        record["trace"] = {
            **stats,
            "compression_ratio": round(stats["raw_bytes"] / stats["body_bytes"], 2),
        }
    return record


def ablation_warnings(record: dict) -> list[str]:
    warnings = []
    if not record.get("replay_parity", False):
        warnings.append(
            "ablation replay results are NOT bit-identical to full execution"
        )
    trace = record.get("trace")
    if trace is None:
        warnings.append(
            "no persisted trace found (REPRO_TRACE_CACHE off?): compression "
            "ratio not verified"
        )
    elif trace["compression_ratio"] < MIN_COMPRESSION_RATIO:
        warnings.append(
            f"trace compression ratio {trace['compression_ratio']}x is below "
            f"the {MIN_COMPRESSION_RATIO}x floor"
        )
    return warnings


# -- latency record ----------------------------------------------------------

#: The closed-loop service grid: two policies (the paper's protagonist and
#: its strongest baseline) under a client-count ladder spanning the paper's
#: 50-client reference setup up to 100x past it, every cell replaying the
#: single (TINY, SEED) boundary trace.  The measured transaction count must
#: comfortably exceed the largest client count, or the "ladder" degenerates
#: into one burst per client.
LATENCY_POLICIES = ("face+gsc", "lc")
LATENCY_CLIENTS = (1, 50, 500, 5000)
SMOKE_LATENCY_CLIENTS = (1, 8)
LATENCY_MEASURE_TX = 6000
SMOKE_LATENCY_MEASURE_TX = 400
#: A policy's knee is the first client count whose throughput gain over the
#: previous rung falls below this fraction — past it, added clients buy
#: queueing delay, not throughput.
KNEE_GAIN_THRESHOLD = 0.10


def locate_knee(points: list[tuple[int, float]]) -> int | None:
    """First client count whose tps gain over the previous rung is < 10 %.

    ``points`` is ``[(n_clients, tps), ...]`` in ascending client order.
    Returns ``None`` when throughput is still climbing at the last rung
    (the knee lies beyond the swept range).
    """
    for (_, prev_tps), (clients, tps) in zip(points, points[1:]):
        if prev_tps > 0 and (tps - prev_tps) / prev_tps < KNEE_GAIN_THRESHOLD:
            return clients
    return None


def run_latency_record(jobs: int, smoke: bool) -> dict:
    """Run the service grid via replay; record latency ladders + knees."""
    from repro.sim.ablation import AblationStudy, verify_parity
    from repro.sim.experiment import ExperimentConfig

    clients = SMOKE_LATENCY_CLIENTS if smoke else LATENCY_CLIENTS
    base = ExperimentConfig(
        scale=TINY,
        seed=SEED,
        scenario="service",
        measure_transactions=(
            SMOKE_LATENCY_MEASURE_TX if smoke else LATENCY_MEASURE_TX
        ),
    )
    study = AblationStudy(
        base, {"policy": LATENCY_POLICIES, "n_clients": clients}
    )
    results = study.run(jobs=jobs, fast=True)
    parity, mismatched = verify_parity(study, results, sample=1 if smoke else 2)

    ladders = {}
    knees = {}
    for policy in LATENCY_POLICIES:
        points = [
            (n, results.cells[(policy, n)].tps) for n in clients
        ]
        ladders[policy] = [
            {
                "n_clients": n,
                "tps": round(r.tps, 2),
                "tpmc": round(r.tpmc, 2),
                "p50_ms": round(r.p50_seconds * 1000.0, 4),
                "p95_ms": round(r.p95_seconds * 1000.0, 4),
                "p99_ms": round(r.p99_seconds * 1000.0, 4),
            }
            for n in clients
            for r in (results.cells[(policy, n)],)
        ]
        knees[policy] = locate_knee(points)

    record = {
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "mode": "smoke" if smoke else "full",
        **results.to_record(),
        "replay_parity": parity,
        "clients": list(clients),
        "ladders": ladders,
        "knees": knees,
    }
    if mismatched:
        record["parity_mismatches"] = [list(key) for key in mismatched]
    return record


def latency_warnings(record: dict) -> list[str]:
    warnings = []
    if not record.get("replay_parity", False):
        warnings.append(
            "service replay results are NOT bit-identical to full execution"
        )
    for cell in record.get("cells", []):
        if not cell["p50_ms"] <= cell["p95_ms"] <= cell["p99_ms"]:
            warnings.append(
                f"cell {cell['key']} has non-monotone percentiles: "
                f"p50 {cell['p50_ms']}ms p95 {cell['p95_ms']}ms "
                f"p99 {cell['p99_ms']}ms"
            )
    if record.get("mode") == "full":
        # The full ladder reaches 100x past each policy's knee; a missing
        # knee means throughput never saturated — the model is broken.
        for policy, knee in record.get("knees", {}).items():
            if knee is None:
                warnings.append(
                    f"policy {policy} never saturated across "
                    f"{record['clients']} clients (no knee located)"
                )
    return warnings


# -- scan-resistance record --------------------------------------------------

#: The scan-resistance grid (paper §3.3): the ``tpch-scan`` registry
#: workload under two mixes — pure sequential scans and the HTAP
#: probe/update preset — over the paper's protagonist (mvFIFO+GSC), the
#: pure-recency strawman it argues against (LRU-2), and LC.  A long scan
#: floods any recency-ranked flash cache with single-touch pages; the
#: multi-version FIFO admission queue plus GSC's reference bits keep the
#: re-visited working set resident instead.
SCAN_POLICIES = ("face+gsc", "lru2", "lc")
#: CI smoke drops the LC baseline (the gates compare GSC against LRU-2)
#: but keeps the full measurement window: a shorter window stops before
#: LRU-2's scan-cannibalisation reaches steady state and the §3.3 gate
#: would measure the transient, not the claim.
SMOKE_SCAN_POLICIES = ("face+gsc", "lru2")
#: Mix name -> preset for :func:`repro.workload.registry.workload_spec`.
SCAN_MIXES = {"pure-scan": None, "htap": "htap"}
SCAN_MEASURE_TX = 400
SCAN_WARMUP = dict(warmup_min=60, warmup_max=800)
SCAN_CACHE_FRACTION = 0.08


def scan_specs(smoke: bool) -> list[CellSpec]:
    from repro.workload.registry import estimate_workload_pages, workload_spec

    policies = SMOKE_SCAN_POLICIES if smoke else SCAN_POLICIES
    specs = []
    for mix, preset in SCAN_MIXES.items():
        spec_w = workload_spec("tpch-scan", preset=preset)
        db_pages = estimate_workload_pages(spec_w, TINY)
        for policy in policies:
            specs.append(CellSpec(
                key=(mix, policy),
                config=scaled_reference_config(
                    db_pages,
                    cache_fraction=SCAN_CACHE_FRACTION,
                    policy=CachePolicy(policy),
                ),
                scale=TINY,
                seed=SEED,
                workload=spec_w.name,
                workload_knobs=spec_w.knobs,
                measure_transactions=SCAN_MEASURE_TX,
                **SCAN_WARMUP,
            ))
    return specs


def run_scan_record(jobs: int, smoke: bool) -> dict:
    """Run the scan grid via replay; record hit ratios + the §3.3 gate.

    Three passes:

    1. seed — a fast grid pass from a clean slate records one native
       ``tpch-scan`` boundary trace per mix (the non-tpcc workloads always
       record natively: cross-scale retargeting is tpcc-only);
    2. the timed claim — the same grid replayed with observability on,
       asserting **zero** natively recorded transactions: every workload
       rides the trace-replay fast path, not just TPC-C;
    3. parity evidence — one cell per mix re-run as full execution and
       compared bit-for-bit against the replayed results.
    """
    import dataclasses

    from repro.sim.parallel import run_cell

    specs = scan_specs(smoke)

    # 1. Seed: records each mix's trace once, then serves its siblings.
    clear_recorders()
    seed_start = time.perf_counter()
    seeded = run_cells(specs, jobs=1, fast=True)
    seed_wall = time.perf_counter() - seed_start

    # 2. Timed replay pass: nothing may record natively now.
    was_enabled = OBS.enabled
    OBS.clear()
    OBS.enable()
    try:
        replay_start = time.perf_counter()
        cells = run_cells(specs, jobs=1, fast=True)
        replay_wall = time.perf_counter() - replay_start
        native_recorded = OBS.counter("replay.trace.recorded_transactions").value
    finally:
        OBS.clear()
        if not was_enabled:
            OBS.disable()

    # 3. Parity: one full-execution cell per mix (the GSC protagonist).
    parity = _strip_obs(cells) == _strip_obs(seeded)
    for mix in SCAN_MIXES:
        spec = next(s for s in specs if s.key == (mix, "face+gsc"))
        full = run_cell(spec)
        parity = parity and (
            dataclasses.replace(full, obs=None)
            == dataclasses.replace(cells[spec.key], obs=None)
        )

    rows = [
        {
            "key": list(key),
            "flash_hit_rate": round(result.flash_hit_rate, 6),
            "tpmc": round(result.tpmc, 2),
            "transactions": result.transactions,
        }
        for key, result in cells.items()
    ]
    hit = {key: cells[key].flash_hit_rate for key in cells}
    return {
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "mode": "smoke" if smoke else "full",
        "workload": "tpch-scan",
        "mixes": {
            mix: (f"preset {preset!r}" if preset else "default knobs")
            for mix, preset in SCAN_MIXES.items()
        },
        "n_cells": len(specs),
        "cells": rows,
        "seed_wall_seconds": round(seed_wall, 3),
        "replay_wall_seconds": round(replay_wall, 3),
        "native_recorded_transactions": int(native_recorded),
        "replay_parity": parity,
        "scan_resistance": {
            mix: {
                "gsc_flash_hit_rate": round(hit[(mix, "face+gsc")], 6),
                "lru2_flash_hit_rate": round(hit[(mix, "lru2")], 6),
                "gsc_beats_lru2": hit[(mix, "face+gsc")] > hit[(mix, "lru2")],
            }
            for mix in SCAN_MIXES
        },
    }


def scan_warnings(record: dict) -> list[str]:
    """Acceptance gates on the scan record (``--strict`` fails on any)."""
    warnings = []
    if not record.get("replay_parity", False):
        warnings.append(
            "scan replay results are NOT bit-identical to full execution"
        )
    if record.get("native_recorded_transactions"):
        warnings.append(
            f"scan replay pass recorded "
            f"{record['native_recorded_transactions']} native transactions "
            f"(expected 0: every mix should replay its seeded trace)"
        )
    gate = record.get("scan_resistance", {}).get("pure-scan", {})
    if not gate.get("gsc_beats_lru2", False):
        warnings.append(
            f"GSC pure-scan flash hit ratio "
            f"{gate.get('gsc_flash_hit_rate')} does not beat LRU-2's "
            f"{gate.get('lru2_flash_hit_rate')} (the §3.3 scan-resistance "
            f"claim)"
        )
    return warnings


# -- recovery record ---------------------------------------------------------

#: The crash/restart grid: every cell shares one (BENCH, SEED) boundary
#: trace, truncated at each cell's kill point.  BENCH scale, not TINY: a
#: TINY restart fetches only ~15 pages during redo, so the flash-vs-disk
#: read gap that Table 6 measures drowns in checkpoint-phase noise there.
RECOVERY_POLICIES = ("face+gsc", "lc", "hdd-only")
RECOVERY_INTERVALS = (1.0, 2.0, 3.0)
SMOKE_RECOVERY_INTERVALS = (1.0,)
RECOVERY_CACHE_FRACTION = 0.08  # the paper's 4 GB / ~50 GB working ratio
RECOVERY_MAX_TX = 20_000
#: FaCE must restart at least this much faster than each baseline at every
#: interval (observed: 2.0-3.4x vs HDD-only, 1.2-2.9x vs LC).
MIN_RESTART_SPEEDUP = 1.1


def run_recovery_record(jobs: int, smoke: bool) -> dict:
    """Run the crash grid via replay; record restart reports + speedups."""
    from repro.sim.ablation import AblationStudy, verify_parity
    from repro.sim.experiment import ExperimentConfig

    intervals = SMOKE_RECOVERY_INTERVALS if smoke else RECOVERY_INTERVALS
    base = ExperimentConfig(
        scale=BENCH,
        seed=SEED,
        cache_fraction=RECOVERY_CACHE_FRACTION,
        scenario="crash",
        checkpoint_interval=intervals[0],
        crash_max_transactions=RECOVERY_MAX_TX,
    )
    study = AblationStudy(
        base,
        {"policy": RECOVERY_POLICIES, "checkpoint_interval": intervals},
    )
    results = study.run(jobs=jobs, fast=True)
    parity, mismatched = verify_parity(study, results, sample=1 if smoke else 2)

    face, *baselines = RECOVERY_POLICIES
    speedups = []
    for interval in intervals:
        face_restart = results.cells[(face, interval)].restart_seconds
        speedups.append({
            "checkpoint_interval": interval,
            "restart_seconds": {
                policy: round(results.cells[(policy, interval)].restart_seconds, 6)
                for policy in RECOVERY_POLICIES
            },
            "face_speedup_vs": {
                policy: round(
                    results.cells[(policy, interval)].restart_seconds
                    / face_restart,
                    3,
                )
                for policy in baselines
            },
        })

    record = {
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "mode": "smoke" if smoke else "full",
        **results.to_record(),
        "replay_parity": parity,
        "speedups": speedups,
    }
    if mismatched:
        record["parity_mismatches"] = [list(key) for key in mismatched]
    return record


def recovery_warnings(record: dict) -> list[str]:
    warnings = []
    if not record.get("replay_parity", False):
        warnings.append(
            "recovery replay results are NOT bit-identical to full execution"
        )
    for entry in record.get("speedups", []):
        for policy, speedup in entry["face_speedup_vs"].items():
            if speedup < MIN_RESTART_SPEEDUP:
                warnings.append(
                    f"FaCE restart speedup vs {policy} at interval "
                    f"{entry['checkpoint_interval']} is {speedup}x "
                    f"(< {MIN_RESTART_SPEEDUP}x floor)"
                )
    return warnings


#: Persistent page-store backends may cost real (harness) time — every
#: page put/get crosses an encode/decode + file boundary — but must never
#: change simulated results.  The overhead gate is deliberately loose
#: (shared-runner noise; the parity gate is the load-bearing one).
MAX_STORAGE_OVERHEAD = 50.0
STORAGE_MEASURE_TX = 1000
SMOKE_STORAGE_MEASURE_TX = 300


def run_storage_record(jobs: int, smoke: bool) -> dict:
    """Time one identical cell per page-store backend; gate replay parity.

    The memory pass runs first and untimed once so that the per-process
    warm-state snapshot cache is populated before any timing starts —
    otherwise whichever backend goes first would be charged the one-time
    workload load.
    """
    import dataclasses

    from repro.sim.experiment import ExperimentConfig
    from repro.storage.registry import available_backends

    scale = TINY if smoke else BENCH
    transactions = SMOKE_STORAGE_MEASURE_TX if smoke else STORAGE_MEASURE_TX

    def run_backend(backend: str):
        config = ExperimentConfig(
            scale=scale,
            seed=SEED,
            measure_transactions=transactions,
            page_store=backend,
        )
        spec = CellSpec.from_config((backend,), config)
        start = time.perf_counter()
        result = run_cells([spec], jobs=1)[(backend,)]
        return time.perf_counter() - start, result

    run_backend("memory")  # warm the load snapshot, discard the timing
    walls: dict[str, float] = {}
    results = {}
    for backend in available_backends():
        walls[backend], results[backend] = run_backend(backend)

    def strip(result):
        return dataclasses.replace(result, name="", obs=None)

    reference = strip(results["memory"])
    parity = {
        backend: strip(result) == reference
        for backend, result in results.items()
    }
    return {
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "mode": "smoke" if smoke else "full",
        "scale": "tiny" if smoke else "bench",
        "transactions": transactions,
        "backends": {
            backend: {
                "wall_seconds": round(walls[backend], 3),
                "overhead_vs_memory": round(
                    walls[backend] / walls["memory"], 3
                ),
                "tpmc": round(results[backend].tpmc, 3),
                "flash_hit_rate": round(results[backend].flash_hit_rate, 6),
                "parity_with_memory": parity[backend],
            }
            for backend in walls
        },
        "replay_parity": all(parity.values()),
    }


def storage_warnings(record: dict) -> list[str]:
    warnings = []
    if not record.get("replay_parity", False):
        divergent = [
            name
            for name, cell in record.get("backends", {}).items()
            if not cell.get("parity_with_memory", False)
        ]
        warnings.append(
            "page-store backends are NOT bit-identical to memory: "
            + ", ".join(divergent)
        )
    for name, cell in record.get("backends", {}).items():
        if cell["overhead_vs_memory"] > MAX_STORAGE_OVERHEAD:
            warnings.append(
                f"backend {name} harness overhead "
                f"{cell['overhead_vs_memory']}x vs memory "
                f"(> {MAX_STORAGE_OVERHEAD}x ceiling)"
            )
    return warnings


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--jobs", type=int, default=2,
                        help="parallel pass worker count (1 skips it)")
    parser.add_argument("--smoke", action="store_true",
                        help="2-cell CI smoke instead of the full sweep")
    parser.add_argument("--strict", action="store_true",
                        help="exit non-zero on regression warnings")
    parser.add_argument("--obs", action="store_true",
                        help="collect per-cell observability snapshots and "
                             "record a counter extract per cell")
    parser.add_argument("--fast", action="store_true",
                        help="also time the trace-replay fast path (cold + "
                             "warm) against the full serial pass and check "
                             "bit-identical parity")
    parser.add_argument("--retarget", action="store_true",
                        help="also run the cross-scale retarget pass: drive "
                             "the whole grid from one BENCH donor recording, "
                             "gate the remap-vs-cold-record speedup and both "
                             "parity tiers, and embed the verify evidence")
    parser.add_argument("--ablation", action="store_true",
                        help="record the replay-driven ablation grid to "
                             "BENCH_ablation.json instead of the sweep")
    parser.add_argument("--recovery", action="store_true",
                        help="record the crash/restart grid to "
                             "BENCH_recovery.json instead of the sweep")
    parser.add_argument("--latency", action="store_true",
                        help="record the closed-loop service grid "
                             "(throughput + tail latency vs client count) "
                             "to BENCH_latency.json instead of the sweep")
    parser.add_argument("--scan", action="store_true",
                        help="record the scan-resistance grid (tpch-scan "
                             "workload over {face+gsc, lru2, lc}) to "
                             "BENCH_scan.json instead of the sweep")
    parser.add_argument("--storage", action="store_true",
                        help="record the page-store backend pass (one "
                             "identical cell per backend: replay parity + "
                             "harness overhead) to BENCH_storage.json "
                             "instead of the sweep")
    parser.add_argument("--output", type=Path, default=None)
    args = parser.parse_args(argv)
    exclusive = [
        name for name, on in
        (("--ablation", args.ablation), ("--recovery", args.recovery),
         ("--latency", args.latency), ("--scan", args.scan),
         ("--storage", args.storage))
        if on
    ]
    if len(exclusive) > 1:
        parser.error(f"{' and '.join(exclusive)} are mutually exclusive")
    if args.storage:
        default_output = STORAGE_RECORD_PATH
    elif args.recovery:
        default_output = RECOVERY_RECORD_PATH
    elif args.ablation:
        default_output = ABLATION_RECORD_PATH
    elif args.latency:
        default_output = LATENCY_RECORD_PATH
    elif args.scan:
        default_output = SCAN_RECORD_PATH
    else:
        default_output = RECORD_PATH
    output = args.output or default_output

    existing = {}
    if output.exists():
        existing = json.loads(output.read_text())
    previous = existing.get("latest")

    if args.storage:
        record = run_storage_record(args.jobs, args.smoke)
        warnings = storage_warnings(record)
    elif args.recovery:
        record = run_recovery_record(args.jobs, args.smoke)
        warnings = recovery_warnings(record)
    elif args.ablation:
        record = run_ablation_record(args.jobs, args.smoke)
        warnings = ablation_warnings(record)
    elif args.latency:
        record = run_latency_record(args.jobs, args.smoke)
        warnings = latency_warnings(record)
    elif args.scan:
        record = run_scan_record(args.jobs, args.smoke)
        warnings = scan_warnings(record)
    else:
        record = run_record(args.jobs, args.smoke, collect_obs=args.obs,
                            fast=args.fast)
        if args.retarget:
            record["retarget"] = run_retarget_pass(args.jobs, args.smoke)
        warnings = (
            compare_with_previous(record, previous)
            + fast_gate_warnings(record)
            + retarget_warnings(record)
        )

    history = existing.get("history", [])
    if previous is not None:
        history = (history + [previous])[-HISTORY_LIMIT:]
    output.write_text(
        json.dumps({"latest": record, "history": history}, indent=2) + "\n"
    )

    if args.storage:
        print(f"wrote {output}")
        print(f"  mode: {record['mode']}  scale: {record['scale']}  "
              f"tx/cell: {record['transactions']}  "
              f"parity: {record['replay_parity']}")
        for backend, cell in record["backends"].items():
            print(f"  {backend}: {cell['wall_seconds']}s "
                  f"({cell['overhead_vs_memory']}x vs memory)  "
                  f"tpmC {cell['tpmc']:,.0f}  "
                  f"parity {cell['parity_with_memory']}")
        for warning in warnings:
            print(f"WARNING: {warning}", file=sys.stderr)
        return 1 if (warnings and args.strict) else 0

    if args.scan:
        print(f"wrote {output}")
        print(f"  cells: {record['n_cells']}  mode: {record['mode']}  "
              f"workload: {record['workload']}")
        print(f"  seed pass: {record['seed_wall_seconds']}s  replay pass: "
              f"{record['replay_wall_seconds']}s  native tx recorded: "
              f"{record['native_recorded_transactions']}  "
              f"parity: {record['replay_parity']}")
        for mix, gate in record["scan_resistance"].items():
            verdict = "beats" if gate["gsc_beats_lru2"] else "DOES NOT beat"
            print(f"  {mix}: GSC flash hit {gate['gsc_flash_hit_rate']} "
                  f"{verdict} LRU-2 {gate['lru2_flash_hit_rate']}")
        for warning in warnings:
            print(f"WARNING: {warning}", file=sys.stderr)
        return 1 if (warnings and args.strict) else 0

    if args.ablation or args.recovery or args.latency:
        print(f"wrote {output}")
        print(f"  cells: {record['n_cells']}  mode: {record['mode']}  "
              f"axes: {' x '.join(record['axes'])}")
        print(f"  wall: {record['wall_seconds']}s "
              f"({record['wall_seconds_per_cell']}s/cell)  "
              f"parity: {record['replay_parity']}")
        if "trace" in record:
            t = record["trace"]
            print(f"  trace: {t['raw_bytes']} raw -> {t['body_bytes']} "
                  f"compressed ({t['compression_ratio']}x)")
        for policy, ladder in record.get("ladders", {}).items():
            knee = record["knees"].get(policy)
            rungs = "  ".join(
                f"{r['n_clients']}cl {r['tps']:,.0f}tps p95 {r['p95_ms']:.1f}ms"
                for r in ladder
            )
            print(f"  {policy}: {rungs}  "
                  f"knee: {knee if knee is not None else 'beyond range'}")
        for entry in record.get("speedups", []):
            vs = "  ".join(
                f"{speedup}x vs {policy}"
                for policy, speedup in entry["face_speedup_vs"].items()
            )
            print(f"  interval {entry['checkpoint_interval']}: "
                  f"FaCE restart {vs}")
        for warning in warnings:
            print(f"WARNING: {warning}", file=sys.stderr)
        return 1 if (warnings and args.strict) else 0

    print(f"wrote {output}")
    print(f"  cells: {len(record['cells'])}  mode: {record['mode']}")
    print(f"  serial: {record['serial']['wall_seconds']}s "
          f"({record['serial']['wall_seconds_per_cell']}s/cell)")
    if "fast" in record:
        f = record["fast"]
        print(f"  fast cold: {f['cold_wall_seconds']}s "
              f"(speedup {f['speedup_cold_vs_serial']}x)  "
              f"warm: {f['warm_wall_seconds']}s "
              f"(speedup {f['speedup_warm_vs_serial']}x)  "
              f"parity: {f['parity']}")
        if "prepare" in f:
            print(f"  prepare (one-time load + decode): {f['prepare']['seconds']}s "
                  f"across {len(f['prepare']['groups'])} trace group(s); "
                  f"retarget remap: {f['prepare']['retarget_seconds']}s")
        if "shared" in f:
            s = f["shared"]
            print(f"  shared (jobs={s['jobs']}): {s['wall_seconds']}s  "
                  f"cells via /dev/shm: {s['shared_cells']}  "
                  f"exhausted: {s['exhausted']}  parity: {s['parity']}  "
                  f"leaked: {len(s['leaked_segments'])}")
    if "retarget" in record:
        r = record["retarget"]
        print(f"  retarget ({r['donor_scale']} -> {r['target_scale']}, "
              f"{r['grid_cells']} cells): remap prepare "
              f"{r['retarget_prepare_seconds']}s vs cold native record "
              f"{r['cold_record_seconds']}s "
              f"(speedup {r['speedup_vs_cold_record']}x)")
        print(f"    native tx recorded: {r['native_recorded_transactions']}  "
              f"retargeted cells: {r['retargeted_cells']}  "
              f"identity parity: {r['identity_parity']}  "
              f"verify passed: {r['verify']['passed']}")
    if "parallel" in record:
        p = record["parallel"]
        print(f"  parallel (jobs={p['jobs']}): {p['wall_seconds']}s "
              f"(speedup {p['speedup_vs_serial']}x)")
    print(f"  deterministic: {record['deterministic']}")
    for warning in warnings:
        print(f"WARNING: {warning}", file=sys.stderr)
    return 1 if (warnings and args.strict) else 0


if __name__ == "__main__":
    raise SystemExit(main())
