"""Table 4: flash-device utilization and 4 KB-page I/O throughput.

Paper (same sweep as Table 3):

(a) device-level utilization of the flash cache (%)::

      LC         92.6  96.4  97.7  98.2  98.1     (saturated)
      FaCE       65.6  73.7  78.9  82.7  84.9
      FaCE+GR    51.6  62.5  67.7  70.0  69.6
      FaCE+GSC   60.9  68.0  70.9  74.7  75.9

(b) throughput in 4 KB-page I/O operations per second::

      LC         4534  4226  3849  3362  3370     (degrades as cache grows)
      FaCE       4973  5870  6479  7019  7415
      FaCE+GR    7213  8474  9390  9848 10693
      FaCE+GSC  11098 12208 13031 13871 14678     (~4x LC at 10 GB)

Shape claims verified: LC saturates its flash device (highest utilization
of all policies) because its I/O is random in-place writes; the FaCE family
stays well below LC's utilization; LC's page throughput *decreases* as the
cache grows while every FaCE variant's *increases*; and FaCE+GSC moves
several times the pages per second that LC does at the largest cache.
"""

from __future__ import annotations

from repro.analysis.tables import format_percent_rows, format_table
from benchmarks.conftest import TABLE_FRACTIONS, once, prefetch_cells, sweep_cell

POLICIES = ("LC", "FaCE", "FaCE+GR", "FaCE+GSC")


def _sweep():
    prefetch_cells(
        (policy, fraction, "mlc")
        for policy in POLICIES
        for fraction in TABLE_FRACTIONS
    )
    return {
        policy: [sweep_cell(policy, fraction) for fraction in TABLE_FRACTIONS]
        for policy in POLICIES
    }


def test_table4_utilization_and_page_iops(benchmark):
    results = once(benchmark, _sweep)
    labels = [f"{int(f * 100)}%" for f in TABLE_FRACTIONS]

    print()
    print(
        format_percent_rows(
            "Table 4(a) - device-level utilization of the flash cache (%)",
            labels,
            [(p, [r.flash_utilization for r in results[p]]) for p in POLICIES],
        )
    )
    print()
    print(
        format_table(
            "Table 4(b) - flash cache throughput (4KB-page I/O per second)",
            ["policy", *labels],
            [
                (p, *[round(r.flash_page_iops) for r in results[p]])
                for p in POLICIES
            ],
        )
    )

    for i, fraction in enumerate(TABLE_FRACTIONS):
        lc = results["LC"][i]
        gsc = results["FaCE+GSC"][i]
        gr = results["FaCE+GR"][i]
        # (a) LC drives the flash device hardest; GR/GSC keep headroom.
        assert lc.flash_utilization > gsc.flash_utilization
        assert lc.flash_utilization > gr.flash_utilization
        if fraction >= 0.12:
            # The saturation regime.  (At the smallest caches our scaled
            # system is still disk-bound — hit rates at equal *fractions*
            # are lower than the paper's because a scaled-down database
            # flattens the page-popularity distribution; the paper's LC was
            # already flash-saturated at 4%.  See EXPERIMENTS.md.)
            assert lc.flash_utilization > 0.9
            assert gsc.flash_utilization < 0.8

    lc_iops = [r.flash_page_iops for r in results["LC"]]
    gsc_iops = [r.flash_page_iops for r in results["FaCE+GSC"]]
    face_iops = [r.flash_page_iops for r in results["FaCE"]]
    # (b) Once LC's flash saturates (>= 12%) its page throughput stops
    # improving — random writes over a wider region cancel the larger
    # cache — while every FaCE variant keeps growing through the sweep.
    assert lc_iops[-1] < 1.15 * lc_iops[2]
    assert face_iops[-1] > face_iops[0]
    assert gsc_iops[-1] > 1.25 * gsc_iops[2]
    # GSC sustains well above LC's page throughput at the largest cache.
    assert gsc_iops[-1] > 1.3 * lc_iops[-1]
