"""Table 3: read hit and write reduction rates vs flash-cache size.

Paper (50 GB database, caches 2-10 GB, i.e. 4-20 %):

(a) flash-hit ratio of all DRAM misses::

      policy      2GB   4GB   6GB   8GB   10GB
      LC         72.9  80.0  83.7  87.0  89.3
      FaCE       65.5  72.6  76.4  78.6  80.5
      FaCE+GR    65.5  72.6  76.2  78.6  80.4
      FaCE+GSC   69.7  76.6  79.8  82.1  83.7

(b) write reduction (dirty evictions absorbed before disk)::

      LC         51.8  62.1  68.8  74.0  78.6
      FaCE       46.3  54.8  60.1  62.8  65.0
      FaCE+GR    46.3  55.3  59.7  62.7  65.4
      FaCE+GSC   50.2  59.9  65.9  70.4  73.9

Shape claims verified here: hit rates and write reductions grow with cache
size for every policy; LC's single-always-current-copy cache hits more than
FaCE's multi-version queue; GSC closes most of that gap (within ~10 %, per
the paper); and FaCE carries a substantial duplicate fraction that LC does
not.
"""

from __future__ import annotations

from repro.analysis.tables import format_percent_rows
from benchmarks.conftest import TABLE_FRACTIONS, once, prefetch_cells, sweep_cell

POLICIES = ("LC", "FaCE", "FaCE+GR", "FaCE+GSC")


def _sweep():
    prefetch_cells(
        (policy, fraction, "mlc")
        for policy in POLICIES
        for fraction in TABLE_FRACTIONS
    )
    return {
        policy: [sweep_cell(policy, fraction) for fraction in TABLE_FRACTIONS]
        for policy in POLICIES
    }


def test_table3_hit_and_write_reduction(benchmark):
    results = once(benchmark, _sweep)
    labels = [f"{int(f * 100)}%" for f in TABLE_FRACTIONS]

    print()
    print(
        format_percent_rows(
            "Table 3(a) - flash cache hits / all DRAM misses (%)",
            labels,
            [(p, [r.flash_hit_rate for r in results[p]]) for p in POLICIES],
        )
    )
    print()
    print(
        format_percent_rows(
            "Table 3(b) - write reduction: dirty evictions absorbed (%)",
            labels,
            [(p, [r.write_reduction for r in results[p]]) for p in POLICIES],
        )
    )
    print()
    print(
        format_percent_rows(
            "(extra) duplicate versions in the FaCE cache (%)",
            labels,
            [(p, [r.duplicate_fraction for r in results[p]])
             for p in ("FaCE", "FaCE+GSC")],
        )
    )

    for policy in POLICIES:
        hits = [r.flash_hit_rate for r in results[policy]]
        reductions = [r.write_reduction for r in results[policy]]
        # Monotone growth with cache size (allow small sampling noise).
        assert hits[-1] > hits[0], f"{policy}: hit rate must grow with cache"
        assert reductions[-1] > reductions[0]
        assert all(0.2 < h < 1.0 for h in hits)

    for i, _ in enumerate(TABLE_FRACTIONS):
        lc = results["LC"][i].flash_hit_rate
        face = results["FaCE"][i].flash_hit_rate
        gsc = results["FaCE+GSC"][i].flash_hit_rate
        # LC's one-copy cache uses space best; GSC recovers most of the gap.
        assert lc >= face - 0.02
        assert gsc >= face - 0.02
        assert lc - face < 0.20  # the paper: gap stays within ~10 %
        # FaCE keeps duplicates; LC never does.
        assert results["FaCE"][i].duplicate_fraction > 0.02
        assert results["LC"][i].duplicate_fraction == 0.0
