"""Shared infrastructure for the paper-reproduction benchmarks.

Every module in this directory regenerates one table or figure from the
paper's evaluation (Section 5).  All experiments share:

* the BENCH TPC-C scale (the paper's 50 GB / 500-warehouse database scaled
  ~1000x with ratios preserved — see ``repro.tpcc.scale``),
* the paper's size ratios (DRAM buffer 0.4 % of the database; flash cache
  swept as a fraction of the database),
* a steady-state protocol: warm up until the flash cache is fully
  populated, reset counters, then measure.

Sweep cells are memoised per session so Table 3, Table 4 and Figure 4 —
which share policy/size grids — pay for each configuration once.  Cells are
independent steady-state measurements, so harnesses run them through the
parallel engine (:mod:`repro.sim.parallel`): set ``REPRO_BENCH_JOBS=N`` to
fan each harness's grid out over N worker processes — results are
bit-identical to a serial run.

Set ``REPRO_BENCH_MODE=full`` for longer runs (tighter estimates, same
shapes).  Cells are served from the trace-replay fast path by default
(bit-identical results, several-fold faster grids); ``REPRO_BENCH_FAST=0``
forces full execution.
"""

from __future__ import annotations

import os
from typing import Iterable, Mapping

import pytest

from repro.core.config import CachePolicy, SystemConfig, scaled_reference_config
from repro.sim.parallel import CellSpec, run_cells
from repro.sim.runner import ExperimentRunner, RunResult
from repro.storage.profiles import MLC_SAMSUNG_470, SLC_INTEL_X25E
from repro.tpcc.loader import estimate_db_pages
from repro.tpcc.scale import BENCH

FULL_MODE = os.environ.get("REPRO_BENCH_MODE", "quick") == "full"

#: Worker processes per harness grid (1 = serial, 0 = one per CPU).
BENCH_JOBS = int(os.environ.get("REPRO_BENCH_JOBS", "1") or "1")

#: Serve sweep cells from the trace-replay fast path
#: (:mod:`repro.sim.replay`) by default — results are bit-identical to full
#: execution and table-style grids finish several times faster.  Set
#: ``REPRO_BENCH_FAST=0`` to force full execution everywhere (e.g. when
#: benchmarking the execution engine itself).
BENCH_FAST = os.environ.get("REPRO_BENCH_FAST", "1").strip().lower() not in (
    "0", "off", "no",
)

#: Measured transactions per configuration.
MEASURE_TX = 6000 if FULL_MODE else 2500
#: Warm-up bounds (warm-up actually stops when the cache is populated).
WARMUP_MIN = 500
WARMUP_MAX = 30_000 if FULL_MODE else 15_000

#: The paper's Table 3/4 flash-cache sizes (2..10 GB of a 50 GB database).
TABLE_FRACTIONS = (0.04, 0.08, 0.12, 0.16, 0.20)
#: Figure 4 extends the sweep to 28 %.
FIG4_FRACTIONS = (0.04, 0.12, 0.20, 0.28)

POLICY_BY_NAME = {
    "LC": CachePolicy.LC,
    "FaCE": CachePolicy.FACE,
    "FaCE+GR": CachePolicy.FACE_GR,
    "FaCE+GSC": CachePolicy.FACE_GSC,
}

DB_PAGES = estimate_db_pages(BENCH)

FLASH_PROFILES = {"mlc": MLC_SAMSUNG_470, "slc": SLC_INTEL_X25E}


def config_for(
    policy_name: str, cache_fraction: float, flash: str = "mlc", **overrides
) -> SystemConfig:
    """The standard system-under-test for one sweep cell."""
    if policy_name == "HDD-only":
        return scaled_reference_config(
            DB_PAGES, cache_fraction=0.01, policy=CachePolicy.NONE, **overrides
        )
    if policy_name == "SSD-only":
        return scaled_reference_config(
            DB_PAGES,
            cache_fraction=0.01,
            policy=CachePolicy.NONE,
            ssd_only=True,
            flash_profile=FLASH_PROFILES[flash],
            label="SSD-only",
            **overrides,
        )
    return scaled_reference_config(
        DB_PAGES,
        cache_fraction=cache_fraction,
        policy=POLICY_BY_NAME[policy_name],
        flash_profile=FLASH_PROFILES[flash],
        **overrides,
    )


#: Session-wide memo of completed cells, keyed by (policy, fraction, flash).
#: ``sweep_cell`` fills it on demand; ``prefetch_cells`` fills many keys at
#: once through the parallel engine.
_CELL_RESULTS: dict[tuple[str, float, str], RunResult] = {}


def _cell_spec(key: tuple[str, float, str]) -> CellSpec:
    policy_name, cache_fraction, flash = key
    return CellSpec(
        key=key,
        config=config_for(policy_name, cache_fraction, flash),
        scale=BENCH,
        seed=42,  # fixed seed — matches the historical memoised cells
        measure_transactions=MEASURE_TX,
        warmup_min=WARMUP_MIN,
        warmup_max=WARMUP_MAX,
    )


def prefetch_cells(keys: Iterable[tuple[str, float, str]], jobs: int | None = None) -> None:
    """Populate the cell memo for ``keys``, fanning out over ``jobs`` workers.

    Harnesses call this up front with their whole grid so that, when
    ``REPRO_BENCH_JOBS`` > 1, independent cells run concurrently; the
    subsequent ``sweep_cell`` lookups are then cache hits.  Results are
    bit-identical to serial execution.
    """
    missing = [k for k in dict.fromkeys(keys) if k not in _CELL_RESULTS]
    if not missing:
        return
    jobs = BENCH_JOBS if jobs is None else jobs
    _CELL_RESULTS.update(
        run_cells([_cell_spec(k) for k in missing], jobs=jobs, fast=BENCH_FAST)
    )


def sweep_cell(policy_name: str, cache_fraction: float, flash: str = "mlc") -> RunResult:
    """Run (once per session) one steady-state measurement cell."""
    key = (policy_name, cache_fraction, flash)
    if key not in _CELL_RESULTS:
        prefetch_cells([key])
    return _CELL_RESULTS[key]


def steady_cells(
    configs: Mapping[str, SystemConfig],
    *,
    seed: int = 42,
    measure_transactions: int | None = None,
    jobs: int | None = None,
) -> dict[str, RunResult]:
    """Measure a set of labelled one-off configurations, possibly in parallel.

    For harnesses whose cells are custom :class:`SystemConfig` builds rather
    than ``config_for`` grid points (Table 2 policies, Table 5 DRAM-vs-flash,
    Figure 5 scale-up, the ablations).  Not memoised — each harness owns its
    own configs.  Returns ``{label: RunResult}`` in input order.
    """
    specs = [
        CellSpec(
            key=(label,),
            config=config,
            scale=BENCH,
            seed=seed,
            measure_transactions=(
                MEASURE_TX if measure_transactions is None else measure_transactions
            ),
            warmup_min=WARMUP_MIN,
            warmup_max=WARMUP_MAX,
        )
        for label, config in configs.items()
    ]
    jobs = BENCH_JOBS if jobs is None else jobs
    cells = run_cells(specs, jobs=jobs, fast=BENCH_FAST)
    return {key[0]: result for key, result in cells.items()}


def once(benchmark, fn):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)


@pytest.fixture(scope="session")
def db_pages() -> int:
    return DB_PAGES
