"""Shared infrastructure for the paper-reproduction benchmarks.

Every module in this directory regenerates one table or figure from the
paper's evaluation (Section 5).  All experiments share:

* the BENCH TPC-C scale (the paper's 50 GB / 500-warehouse database scaled
  ~1000x with ratios preserved — see ``repro.tpcc.scale``),
* the paper's size ratios (DRAM buffer 0.4 % of the database; flash cache
  swept as a fraction of the database),
* a steady-state protocol: warm up until the flash cache is fully
  populated, reset counters, then measure.

Sweep cells are memoised per session so Table 3, Table 4 and Figure 4 —
which share policy/size grids — pay for each configuration once.

Set ``REPRO_BENCH_MODE=full`` for longer runs (tighter estimates, same
shapes).
"""

from __future__ import annotations

import os
from functools import lru_cache

import pytest

from repro.core.config import CachePolicy, SystemConfig, scaled_reference_config
from repro.sim.runner import ExperimentRunner, RunResult
from repro.storage.profiles import MLC_SAMSUNG_470, SLC_INTEL_X25E
from repro.tpcc.loader import estimate_db_pages
from repro.tpcc.scale import BENCH

FULL_MODE = os.environ.get("REPRO_BENCH_MODE", "quick") == "full"

#: Measured transactions per configuration.
MEASURE_TX = 6000 if FULL_MODE else 2500
#: Warm-up bounds (warm-up actually stops when the cache is populated).
WARMUP_MIN = 500
WARMUP_MAX = 30_000 if FULL_MODE else 15_000

#: The paper's Table 3/4 flash-cache sizes (2..10 GB of a 50 GB database).
TABLE_FRACTIONS = (0.04, 0.08, 0.12, 0.16, 0.20)
#: Figure 4 extends the sweep to 28 %.
FIG4_FRACTIONS = (0.04, 0.12, 0.20, 0.28)

POLICY_BY_NAME = {
    "LC": CachePolicy.LC,
    "FaCE": CachePolicy.FACE,
    "FaCE+GR": CachePolicy.FACE_GR,
    "FaCE+GSC": CachePolicy.FACE_GSC,
}

DB_PAGES = estimate_db_pages(BENCH)

FLASH_PROFILES = {"mlc": MLC_SAMSUNG_470, "slc": SLC_INTEL_X25E}


def config_for(
    policy_name: str, cache_fraction: float, flash: str = "mlc", **overrides
) -> SystemConfig:
    """The standard system-under-test for one sweep cell."""
    if policy_name == "HDD-only":
        return scaled_reference_config(
            DB_PAGES, cache_fraction=0.01, policy=CachePolicy.NONE, **overrides
        )
    if policy_name == "SSD-only":
        return scaled_reference_config(
            DB_PAGES,
            cache_fraction=0.01,
            policy=CachePolicy.NONE,
            ssd_only=True,
            flash_profile=FLASH_PROFILES[flash],
            label="SSD-only",
            **overrides,
        )
    return scaled_reference_config(
        DB_PAGES,
        cache_fraction=cache_fraction,
        policy=POLICY_BY_NAME[policy_name],
        flash_profile=FLASH_PROFILES[flash],
        **overrides,
    )


@lru_cache(maxsize=None)
def sweep_cell(policy_name: str, cache_fraction: float, flash: str = "mlc") -> RunResult:
    """Run (once per session) one steady-state measurement cell."""
    runner = ExperimentRunner(config_for(policy_name, cache_fraction, flash), BENCH)
    runner.warm_up(WARMUP_MIN, WARMUP_MAX)
    return runner.measure(MEASURE_TX)


def once(benchmark, fn):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)


@pytest.fixture(scope="session")
def db_pages() -> int:
    return DB_PAGES
