"""Sensitivity study: access skew (beyond the paper's fixed TPC-C skew).

The paper evaluates one workload (TPC-C's NURand).  This study sweeps the
Zipf exponent of a synthetic key-value workload to show *when* a flash
cache pays off — the §2.2 analysis predicts the benefit tracks the hit
rate a second-level cache can reach, which collapses as accesses approach
uniform and the cache fraction stays fixed.
"""

from __future__ import annotations

from repro.analysis.tables import format_table
from repro.core.config import CachePolicy, SystemConfig
from repro.core.dbms import SimulatedDBMS
from repro.workload.synthetic import SyntheticKVWorkload
from benchmarks.conftest import FULL_MODE, once

N_KEYS = 40_000  # ~1,700 pages of data+index
SKEWS = (0.0, 0.5, 0.99, 1.3)
TX = 2_500 if FULL_MODE else 1_200


def _run(zipf_s: float, policy: CachePolicy):
    config = SystemConfig(
        buffer_pages=32,
        cache_policy=policy,
        cache_pages=128,  # ~8% of the data, like the paper's operating point
        segment_entries=64,
        scan_depth=32,
        n_disks=8,
        disk_capacity_pages=1 << 17,
    )
    dbms = SimulatedDBMS(config)
    workload = SyntheticKVWorkload(
        dbms, n_keys=N_KEYS, zipf_s=zipf_s, update_fraction=0.3, seed=11
    )
    workload.load()
    workload.run(max(200, TX // 4))  # warm-up
    dbms.reset_measurements()
    committed_before = workload.committed
    workload.run(TX)
    wall = dbms.wall_clock()
    tx_rate = (workload.committed - committed_before) / wall if wall else 0.0
    return tx_rate, dbms.cache.stats.flash_hit_rate


def test_sensitivity_to_access_skew(benchmark):
    def run():
        out = {}
        for s in SKEWS:
            face_rate, face_hit = _run(s, CachePolicy.FACE_GSC)
            hdd_rate, _ = _run(s, CachePolicy.NONE)
            out[s] = (face_rate, hdd_rate, face_hit)
        return out

    results = once(benchmark, run)

    print()
    print(
        format_table(
            "Sensitivity - FaCE+GSC benefit vs Zipf skew (cache = 8% of data)",
            ["zipf s", "FaCE tx/s", "HDD tx/s", "speedup", "flash hit %"],
            [
                (
                    s,
                    round(face, 1),
                    round(hdd, 1),
                    f"{face / hdd:.2f}x",
                    round(100 * hit, 1),
                )
                for s, (face, hdd, hit) in results.items()
            ],
        )
    )

    # Flash hit rate rises with skew...
    hits = [results[s][2] for s in SKEWS]
    assert hits[-1] > hits[0] + 0.15
    # ...and so does the cache's speedup over no-cache.
    speedups = [results[s][0] / results[s][1] for s in SKEWS]
    assert speedups[-1] > speedups[0]
    # Under strong skew the cache is clearly worth it.
    assert speedups[-1] > 1.3
    # Even uniform traffic is not *hurt* materially (FaCE adds ~no disk I/O).
    assert speedups[0] > 0.8
