"""Figure 4: transaction throughput (tpmC) vs flash-cache size.

Paper, MLC SSD (Fig. 4a) and SLC SSD (Fig. 4b), cache swept 4-28 % of the
database, plus two flat reference lines (HDD-only and SSD-only):

* FaCE+GSC > FaCE+GR > FaCE > LC at every size, roughly 2x LC at the top;
* LC stays nearly flat under MLC (its flash device is saturated) but
  improves under SLC (higher random-write IOPS);
* FaCE+GSC with a cache of ~10 % of the database *beats storing the whole
  database on the SSD* (≈3x under MLC) — the paper's headline result;
* everything with a cache beats HDD-only.
"""

from __future__ import annotations

import pytest

from repro.analysis.tables import format_table
from benchmarks.conftest import FIG4_FRACTIONS, once, prefetch_cells, sweep_cell

POLICIES = ("LC", "FaCE", "FaCE+GR", "FaCE+GSC")


def _series(flash: str):
    prefetch_cells(
        [
            (policy, fraction, flash)
            for policy in POLICIES
            for fraction in FIG4_FRACTIONS
        ]
        + [("HDD-only", 0.0, flash), ("SSD-only", 0.0, flash)]
    )
    out = {
        policy: [sweep_cell(policy, fraction, flash) for fraction in FIG4_FRACTIONS]
        for policy in POLICIES
    }
    out["HDD-only"] = [sweep_cell("HDD-only", 0.0, flash)]
    out["SSD-only"] = [sweep_cell("SSD-only", 0.0, flash)]
    return out


def _print_figure(title: str, results) -> None:
    labels = [f"{int(f * 100)}%" for f in FIG4_FRACTIONS]
    rows = [
        (policy, *[round(r.tpmc) for r in results[policy]]) for policy in POLICIES
    ]
    rows.append(("HDD-only", *[round(results["HDD-only"][0].tpmc)] * len(labels)))
    rows.append(("SSD-only", *[round(results["SSD-only"][0].tpmc)] * len(labels)))
    print()
    print(format_table(title, ["policy", *labels], rows))


def _check_shapes(results, ssd_kind: str) -> None:
    hdd = results["HDD-only"][0].tpmc
    ssd = results["SSD-only"][0].tpmc
    top = FIG4_FRACTIONS.index(max(FIG4_FRACTIONS))

    for policy in POLICIES:
        series = [r.tpmc for r in results[policy]]
        # Throughput improves with cache size for the FaCE family.
        if policy != "LC":
            assert series[-1] > series[0], f"{policy} must scale with cache"
        # A warm flash cache always beats no cache at the larger sizes.
        assert series[-1] > hdd

    gsc = [r.tpmc for r in results["FaCE+GSC"]]
    lc = [r.tpmc for r in results["LC"]]
    face = [r.tpmc for r in results["FaCE"]]
    gr = [r.tpmc for r in results["FaCE+GR"]]
    # Ordering at the large-cache end: GSC > GR >~ FaCE > LC.
    assert gsc[top] > lc[top] * 1.15
    assert gsc[top] > face[top]
    assert gr[top] >= face[top] * 0.95
    # The headline: a ~10-30% cache under GSC beats SSD-only under MLC.
    if ssd_kind == "mlc":
        assert gsc[top] > ssd, (
            f"FaCE+GSC ({gsc[top]:.0f}) must beat SSD-only ({ssd:.0f})"
        )
    # LC gains less from extra cache than GSC does (saturation).
    assert (gsc[top] - gsc[0]) > (lc[top] - lc[0])


def test_fig4a_throughput_mlc(benchmark):
    results = once(benchmark, lambda: _series("mlc"))
    _print_figure("Figure 4(a) - tpmC vs cache size, MLC SSD (Samsung 470)", results)
    _check_shapes(results, "mlc")


def test_fig4b_throughput_slc(benchmark):
    results = once(benchmark, lambda: _series("slc"))
    _print_figure("Figure 4(b) - tpmC vs cache size, SLC SSD (Intel X25-E)", results)
    _check_shapes(results, "slc")
    # SLC narrows LC's gap (better random writes) but GSC still wins by
    # >= 25% per the paper.
    top = len(FIG4_FRACTIONS) - 1
    assert results["FaCE+GSC"][top].tpmc > 1.1 * results["LC"][top].tpmc
