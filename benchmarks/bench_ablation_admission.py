"""Ablation (Section 3.2, "Caching Clean and Dirty").

The paper chooses to cache *both* clean and dirty evictions: dirty pages
always pay off (a disk write is otherwise immediate), while clean pages pay
off through read hits.  ``face_cache_clean=False`` gives the dirty-only
alternative for comparison.
"""

from __future__ import annotations

from repro.analysis.tables import format_table
from repro.sim.runner import ExperimentRunner
from repro.tpcc.scale import BENCH
from benchmarks.conftest import MEASURE_TX, WARMUP_MAX, WARMUP_MIN, config_for, once

CACHE_FRACTION = 0.12


def _run(cache_clean: bool):
    config = config_for("FaCE+GSC", CACHE_FRACTION).with_(
        face_cache_clean=cache_clean,
        label="clean+dirty" if cache_clean else "dirty-only",
    )
    runner = ExperimentRunner(config, BENCH)
    runner.warm_up(WARMUP_MIN, WARMUP_MAX)
    return runner.measure(MEASURE_TX)


def test_ablation_admission_policy(benchmark):
    results = once(benchmark, lambda: {cc: _run(cc) for cc in (True, False)})

    print()
    print(
        format_table(
            "Ablation - admission under FaCE+GSC (cache = 12% of DB)",
            ["admission", "tpmC", "flash hit %", "write red. %"],
            [
                (
                    r.name,
                    round(r.tpmc),
                    round(100 * r.flash_hit_rate, 1),
                    round(100 * r.write_reduction, 1),
                )
                for r in results.values()
            ],
            width=16,
        )
    )

    both, dirty_only = results[True], results[False]
    # Caching clean pages buys read hits on this read-heavy mix...
    assert both.flash_hit_rate > dirty_only.flash_hit_rate
    # ...without giving up the write reduction.
    assert both.write_reduction > 0.75 * dirty_only.write_reduction
    # Net: the paper's choice wins on throughput.
    assert both.tpmc > dirty_only.tpmc
