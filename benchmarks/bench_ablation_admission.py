"""Ablation (Section 3.2, "Caching Clean and Dirty").

The paper chooses to cache *both* clean and dirty evictions: dirty pages
always pay off (a disk write is otherwise immediate), while clean pages pay
off through read hits.  ``face_cache_clean=False`` gives the dirty-only
alternative for comparison.
"""

from __future__ import annotations

from repro.analysis.tables import format_table
from benchmarks.conftest import config_for, once, steady_cells

CACHE_FRACTION = 0.12

LABELS = {True: "clean+dirty", False: "dirty-only"}


def _sweep():
    cells = steady_cells({
        label: config_for("FaCE+GSC", CACHE_FRACTION).with_(
            face_cache_clean=cc, label=label
        )
        for cc, label in LABELS.items()
    })
    return {cc: cells[label] for cc, label in LABELS.items()}


def test_ablation_admission_policy(benchmark):
    results = once(benchmark, _sweep)

    print()
    print(
        format_table(
            "Ablation - admission under FaCE+GSC (cache = 12% of DB)",
            ["admission", "tpmC", "flash hit %", "write red. %"],
            [
                (
                    r.name,
                    round(r.tpmc),
                    round(100 * r.flash_hit_rate, 1),
                    round(100 * r.write_reduction, 1),
                )
                for r in results.values()
            ],
            width=16,
        )
    )

    both, dirty_only = results[True], results[False]
    # Caching clean pages buys read hits on this read-heavy mix...
    assert both.flash_hit_rate > dirty_only.flash_hit_rate
    # ...without giving up the write reduction.
    assert both.write_reduction > 0.75 * dirty_only.write_reduction
    # Net: the paper's choice wins on throughput.
    assert both.tpmc > dirty_only.tpmc
