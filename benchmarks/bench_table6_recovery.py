"""Table 6 + Section 4.2 metrics: restart time after a crash.

Paper (4 GB cache ≈ 8 % of DB, checkpoint intervals 60/120/180 s, crash at
the mid-point of a checkpoint interval)::

    (seconds)      60    120    180
    FaCE+GSC       93    118    188
    HDD only      604    786    823

i.e. a 77-85 % reduction, because >98 % of the pages redo needs are fetched
from the (persistent) flash cache, and the metadata directory restore adds
only ~2.5 s.  Checkpoint intervals scale with the simulated system; the
crash is injected halfway through an interval, as in the paper.
"""

from __future__ import annotations

from repro.analysis.tables import format_table
from repro.sim.crashes import crash_mid_interval
from repro.sim.runner import ExperimentRunner
from repro.tpcc.scale import BENCH
from benchmarks.conftest import FULL_MODE, WARMUP_MAX, WARMUP_MIN, config_for, once

#: Checkpoint intervals in simulated seconds.  The paper used 60/120/180 s;
#: the scaled system runs ~1000x less data, so intervals are scaled to keep
#: the redo window in the same proportion to the DRAM buffer and flash
#: cache (see EXPERIMENTS.md) while preserving the 1:2:3 ratio.
INTERVALS = (1.0, 2.0, 3.0)
CACHE_FRACTION = 0.08
SERIES = ("FaCE+GSC", "HDD-only")
_MAX_TX = 40_000 if FULL_MODE else 20_000


def _crash_and_measure(policy: str, interval: float):
    runner = ExperimentRunner(config_for(policy, CACHE_FRACTION), BENCH)
    runner.warm_up(WARMUP_MIN, WARMUP_MAX)
    return crash_mid_interval(
        runner, interval, min_checkpoints=2, max_transactions=_MAX_TX
    ).report


def test_table6_restart_times(benchmark):
    def run():
        return {
            policy: [_crash_and_measure(policy, i) for i in INTERVALS]
            for policy in SERIES
        }

    reports = once(benchmark, run)

    print()
    print(
        format_table(
            "Table 6 - time to restart after a crash (simulated seconds)",
            ["policy", *[f"ckpt {int(i)}s" for i in INTERVALS]],
            [
                (p, *[round(r.total_time, 2) for r in reports[p]])
                for p in SERIES
            ],
        )
    )
    face = reports["FaCE+GSC"]
    print(
        format_table(
            "Section 4.2 - FaCE restart breakdown",
            ["interval", "metadata(s)", "flash-read %", "redo applied"],
            [
                (
                    f"{int(i)}s",
                    round(r.metadata_restore_time, 3),
                    round(100 * r.flash_read_fraction, 1),
                    r.redo_applied,
                )
                for i, r in zip(INTERVALS, face)
            ],
        )
    )

    for i, interval in enumerate(INTERVALS):
        face_time = reports["FaCE+GSC"][i].total_time
        hdd_time = reports["HDD-only"][i].total_time
        # The paper: 77-85 % reduction; the scaled system achieves 50-70 %
        # (see EXPERIMENTS.md).  Require at least 40 %.
        assert face_time < 0.6 * hdd_time, (
            f"interval {interval}: FaCE {face_time:.2f}s vs HDD {hdd_time:.2f}s"
        )
        # Section 5.5: >98 % of recovery pages came from the flash cache.
        assert reports["FaCE+GSC"][i].flash_read_fraction > 0.9
        assert reports["FaCE+GSC"][i].cache_survived
        # Metadata restore is a small additive term, as in the paper.
        assert (
            reports["FaCE+GSC"][i].metadata_restore_time < 0.3 * face_time
            or reports["FaCE+GSC"][i].metadata_restore_time < 1.0
        )

    # Longer checkpoint intervals mean longer redo, for both systems.
    for policy in SERIES:
        times = [r.total_time for r in reports[policy]]
        assert times[-1] > times[0] * 0.8  # monotone up to sampling noise
