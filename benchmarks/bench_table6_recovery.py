"""Table 6 + Section 4.2 metrics: restart time after a crash.

Paper (4 GB cache ≈ 8 % of DB, checkpoint intervals 60/120/180 s, crash at
the mid-point of a checkpoint interval)::

    (seconds)      60    120    180
    FaCE+GSC       93    118    188
    HDD only      604    786    823

i.e. a 77-85 % reduction, because >98 % of the pages redo needs are fetched
from the (persistent) flash cache, and the metadata directory restore adds
only ~2.5 s.  Checkpoint intervals scale with the simulated system; the
crash is injected halfway through an interval, as in the paper.

The {policy} x {interval} grid runs as :class:`CrashRecoveryScenario` cells
through the parallel engine: every cell shares one ``(BENCH, 42)`` workload
stream, so with ``REPRO_BENCH_FAST`` (the default) all six crash cells
replay one recorded boundary trace — truncated at each cell's kill point —
with bit-identical restart reports.
"""

from __future__ import annotations

from repro.analysis.tables import format_table
from repro.sim.parallel import CellSpec, run_cells
from repro.sim.scenario import CrashRecoveryScenario
from repro.tpcc.scale import BENCH
from benchmarks.conftest import (
    BENCH_FAST,
    BENCH_JOBS,
    FULL_MODE,
    WARMUP_MAX,
    WARMUP_MIN,
    config_for,
    once,
)

#: Checkpoint intervals in simulated seconds.  The paper used 60/120/180 s;
#: the scaled system runs ~1000x less data, so intervals are scaled to keep
#: the redo window in the same proportion to the DRAM buffer and flash
#: cache (see EXPERIMENTS.md) while preserving the 1:2:3 ratio.
INTERVALS = (1.0, 2.0, 3.0)
CACHE_FRACTION = 0.08
SERIES = ("FaCE+GSC", "HDD-only")
_MAX_TX = 40_000 if FULL_MODE else 20_000


def _crash_grid():
    """Every (policy, interval) crash cell, through the parallel engine."""
    specs = [
        CellSpec(
            key=(policy, interval),
            config=config_for(policy, CACHE_FRACTION),
            scale=BENCH,
            seed=42,
            scenario=CrashRecoveryScenario(
                checkpoint_interval=interval,
                max_transactions=_MAX_TX,
                warmup_min=WARMUP_MIN,
                warmup_max=WARMUP_MAX,
            ),
        )
        for policy in SERIES
        for interval in INTERVALS
    ]
    cells = run_cells(specs, jobs=BENCH_JOBS, fast=BENCH_FAST)
    return {
        policy: [cells[(policy, interval)].report for interval in INTERVALS]
        for policy in SERIES
    }


def test_table6_restart_times(benchmark):
    reports = once(benchmark, _crash_grid)

    print()
    print(
        format_table(
            "Table 6 - time to restart after a crash (simulated seconds)",
            ["policy", *[f"ckpt {int(i)}s" for i in INTERVALS]],
            [
                (p, *[round(r.total_time, 2) for r in reports[p]])
                for p in SERIES
            ],
        )
    )
    face = reports["FaCE+GSC"]
    print(
        format_table(
            "Section 4.2 - FaCE restart breakdown",
            ["interval", "metadata(s)", "flash-read %", "redo applied"],
            [
                (
                    f"{int(i)}s",
                    round(r.metadata_restore_time, 3),
                    round(100 * r.flash_read_fraction, 1),
                    r.redo_applied,
                )
                for i, r in zip(INTERVALS, face)
            ],
        )
    )

    for i, interval in enumerate(INTERVALS):
        face_time = reports["FaCE+GSC"][i].total_time
        hdd_time = reports["HDD-only"][i].total_time
        # The paper: 77-85 % reduction; the scaled system achieves 50-70 %
        # (see EXPERIMENTS.md).  Require at least 40 %.
        assert face_time < 0.6 * hdd_time, (
            f"interval {interval}: FaCE {face_time:.2f}s vs HDD {hdd_time:.2f}s"
        )
        # Section 5.5: >98 % of recovery pages came from the flash cache.
        assert reports["FaCE+GSC"][i].flash_read_fraction > 0.9
        assert reports["FaCE+GSC"][i].cache_survived
        # Metadata restore is a small additive term, as in the paper.
        assert (
            reports["FaCE+GSC"][i].metadata_restore_time < 0.3 * face_time
            or reports["FaCE+GSC"][i].metadata_restore_time < 1.0
        )

    # Longer checkpoint intervals mean longer redo, for both systems.
    for policy in SERIES:
        times = [r.total_time for r in reports[policy]]
        assert times[-1] > times[0] * 0.8  # monotone up to sampling noise
