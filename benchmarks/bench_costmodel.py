"""Section 2.2: cost-effectiveness of flash cache vs DRAM — the analysis.

Regenerates the paper's break-even formula results with the Table 1 device
pair (Seagate Cheetah / Samsung 470) and cross-checks the analytical claim
against the simulator's Table 5 mechanism: the exponent
``C_disk / (C_disk - C_flash)`` is barely above one, so a dollar of flash
(10x more capacity than a dollar of DRAM) buys several times the I/O-time
reduction.
"""

from __future__ import annotations

import pytest

from repro.analysis.costmodel import breakeven_exponent, breakeven_theta, roi_ratio
from repro.analysis.tables import format_table
from repro.storage.profiles import (
    DRAM_TO_FLASH_PRICE_RATIO,
    HDD_CHEETAH_15K,
    MLC_SAMSUNG_470,
)
from benchmarks.conftest import once


def test_section22_costmodel(benchmark):
    def run():
        rows = []
        for label, read_fraction in (("read-only", 1.0), ("write-only", 0.0)):
            exponent = breakeven_exponent(
                HDD_CHEETAH_15K, MLC_SAMSUNG_470, read_fraction
            )
            theta = breakeven_theta(0.5, HDD_CHEETAH_15K, MLC_SAMSUNG_470,
                                    read_fraction)
            roi = roi_ratio(0.5, HDD_CHEETAH_15K, MLC_SAMSUNG_470,
                            DRAM_TO_FLASH_PRICE_RATIO, read_fraction)
            rows.append((label, round(exponent, 4), round(theta, 4), round(roi, 2)))
        return rows

    rows = once(benchmark, run)
    print()
    print(
        format_table(
            "Section 2.2 - break-even exponent, theta(delta=0.5), ROI at 10:1 $/GB",
            ["workload", "exponent", "theta", "flash ROI"],
            rows,
        )
    )

    read_only, write_only = rows
    # The paper: exponents "very close to one" (~1.006 read, ~1.025 write
    # from their arithmetic; Table 1's own numbers give 1.015/1.058).
    assert 1.0 < read_only[1] < 1.03
    assert 1.0 < write_only[1] < 1.08
    assert read_only[1] < write_only[1]
    # Break-even flash size is nearly 1:1 with the displaced DRAM.
    assert read_only[2] == pytest.approx(0.5, abs=0.05)
    # Equal money in flash buys multiples of the DRAM benefit.
    assert read_only[3] > 2.0
    assert write_only[3] > 2.0
