"""Table 1: price and performance characteristics of the device models.

Regenerates the paper's Table 1 by *measuring* the simulated devices with
the same microbenchmark shape the Orion tool used: sustained 4 KB random
reads/writes (reported as IOPS) and large sequential transfers (reported as
MB/s).  The measured numbers must round-trip the calibration inputs —
this is the benchmark that proves the substrate is faithful to the paper's
hardware table.
"""

from __future__ import annotations

import random

import pytest

from repro.analysis.tables import format_table
from repro.storage.device import Device
from repro.storage.hdd import DiskDevice
from repro.storage.profiles import PAGE_SIZE, TABLE1_PROFILES, DeviceProfile
from repro.storage.raid import Raid0Array
from repro.storage.ssd import FlashDevice
from benchmarks.conftest import once

_OPS = 2000
_SEQ_PAGES = 4096


def _build(name: str, profile: DeviceProfile) -> Device:
    capacity = 1 << 20
    if "SSD" in profile.name:
        return FlashDevice(profile, capacity)
    if "RAID" in profile.name:
        return Raid0Array(8, capacity_pages=capacity)
    return DiskDevice(profile, capacity)


def _measure(device: Device) -> dict[str, float]:
    rng = random.Random(0)
    out: dict[str, float] = {}
    # Random 4 KB reads.
    device.reset_stats()
    for _ in range(_OPS):
        device.read(rng.randrange(0, device.capacity_pages - 1))
    out["rand_read_iops"] = _OPS / device.busy_time
    # Random 4 KB writes (spread over the device, as Orion's steady state).
    device.reset_stats()
    for _ in range(_OPS):
        device.write(rng.randrange(0, device.capacity_pages - 1))
    out["rand_write_iops"] = _OPS / device.busy_time
    # Sequential transfers.
    device.reset_stats()
    device.read(0, _SEQ_PAGES)
    out["seq_read_mbps"] = _SEQ_PAGES * PAGE_SIZE / device.busy_time / 1e6
    device.reset_stats()
    device.write(0, _SEQ_PAGES)
    out["seq_write_mbps"] = _SEQ_PAGES * PAGE_SIZE / device.busy_time / 1e6
    return out


def test_table1_device_characteristics(benchmark):
    def run():
        return {
            name: _measure(_build(name, profile))
            for name, profile in TABLE1_PROFILES.items()
        }

    measured = once(benchmark, run)

    rows = []
    for name, profile in TABLE1_PROFILES.items():
        m = measured[name]
        rows.append(
            (
                profile.name[:34],
                round(m["rand_read_iops"]),
                round(m["rand_write_iops"]),
                round(m["seq_read_mbps"], 1),
                round(m["seq_write_mbps"], 1),
                round(profile.capacity_gb, 1),
                f"{profile.price_usd} ({profile.price_per_gb:.2f})",
            )
        )
    print()
    print(
        format_table(
            "Table 1 - measured device characteristics (paper values in profiles)",
            ["device", "rd IOPS", "wr IOPS", "rd MB/s", "wr MB/s", "GB", "$ ($/GB)"],
            rows,
            width=14,
        )
    )

    # Measured values must reproduce the calibration inputs.
    for name, profile in TABLE1_PROFILES.items():
        m = measured[name]
        assert m["rand_read_iops"] == pytest.approx(profile.random_read_iops, rel=0.02)
        assert m["seq_read_mbps"] == pytest.approx(profile.seq_read_mbps, rel=0.02)
        assert m["seq_write_mbps"] == pytest.approx(profile.seq_write_mbps, rel=0.02)
        if "SSD" in profile.name:
            # Wide random writes approach the calibrated (worst-case) rate.
            assert m["rand_write_iops"] >= profile.random_write_iops * 0.95
        else:
            assert m["rand_write_iops"] == pytest.approx(
                profile.random_write_iops, rel=0.02
            )

    # The structural facts the paper builds on (Section 2.1).
    mlc = measured["mlc_samsung_470"]
    disk = measured["hdd_cheetah_15k"]
    raid = measured["raid0_8_disks"]
    assert mlc["rand_read_iops"] > 10 * raid["rand_read_iops"]
    assert mlc["rand_read_iops"] > 50 * disk["rand_read_iops"]
