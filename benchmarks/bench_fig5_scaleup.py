"""Figure 5: scale-up with a wider disk array.

Paper: flash cache fixed at 6 GB (12 % of the database), RAID-0 width swept
over {4, 8, 12, 16} disks; FaCE+GSC and HDD-only scale with the array while
LC stops scaling beyond 8 disks (its saturated flash cache becomes the
bottleneck) and ends up *below HDD-only* at 16 disks.
"""

from __future__ import annotations

from repro.analysis.tables import format_table
from benchmarks.conftest import config_for, once, steady_cells

DISKS = (4, 8, 12, 16)
CACHE_FRACTION = 0.12
SERIES = ("FaCE+GSC", "LC", "HDD-only")


def test_fig5_disk_array_scaleup(benchmark):
    def run():
        cells = steady_cells({
            f"{p}/{n}": config_for(p, CACHE_FRACTION, n_disks=n)
            for p in SERIES
            for n in DISKS
        })
        return {p: [cells[f"{p}/{n}"].tpmc for n in DISKS] for p in SERIES}

    results = once(benchmark, run)

    print()
    print(
        format_table(
            "Figure 5 - tpmC vs number of RAID-0 disks (cache = 12% of DB)",
            ["policy", *[f"{n} disks" for n in DISKS]],
            [(p, *[round(v) for v in results[p]]) for p in SERIES],
        )
    )

    gsc, lc, hdd = (results[p] for p in SERIES)
    # FaCE and HDD-only scale with the array.
    assert gsc[-1] > 1.5 * gsc[0]
    assert hdd[-1] > 1.5 * hdd[0]
    # LC does not scale once its flash device saturates.
    assert lc[-1] < 1.3 * lc[1], "LC must stop scaling beyond 8 disks"
    # FaCE+GSC tops LC once the array can feed it (the paper's curves
    # likewise converge at 4 disks, where both are disk-starved).
    for g, l in zip(gsc[1:], lc[1:]):
        assert g > l
    # The paper's punchline: at 16 disks LC is no better than HDD-only.
    assert lc[-1] < 1.2 * hdd[-1]
