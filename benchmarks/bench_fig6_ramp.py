"""Figure 6: transaction throughput immediately after a restart.

Paper: with FaCE enabled the system resumes processing much sooner (restart
is 4-8x faster) *and* runs at a higher level from the first window, because
the flash cache comes back warm; the HDD-only system restarts slowly and
then ramps from a completely cold buffer.

The bench replays the experiment: run, checkpoint, crash mid-interval,
restart, then record windowed tpmC including the restart outage.
"""

from __future__ import annotations

from repro.analysis.tables import format_table
from repro.recovery.restart import RecoveryManager
from repro.sim.crashes import run_until_mid_interval
from repro.sim.metrics import ThroughputSeries
from repro.sim.runner import ExperimentRunner
from repro.tpcc.scale import BENCH
from benchmarks.conftest import FULL_MODE, WARMUP_MAX, WARMUP_MIN, config_for, once

CACHE_FRACTION = 0.12
CHECKPOINT_INTERVAL = 2.0
WINDOW = 1.0
POST_TX = 6000 if FULL_MODE else 3000


def _run(policy: str):
    runner = ExperimentRunner(config_for(policy, CACHE_FRACTION), BENCH)
    runner.warm_up(WARMUP_MIN, WARMUP_MAX)
    dbms = runner.dbms
    # Reach steady state, checkpoint, then pull the plug mid-interval
    # (as in Section 5.5).
    run_until_mid_interval(runner, CHECKPOINT_INTERVAL, max_transactions=20_000)
    dbms.crash()
    restart = RecoveryManager(dbms).restart()

    # Post-restart phase: measure from the moment of the crash.
    dbms.reset_measurements()
    runner.driver.stats.reset()
    outage = restart.total_time  # the recovery outage precedes transaction work
    series = ThroughputSeries()
    series.record(outage, 0)
    executed = 0
    while executed < POST_TX:
        runner.driver.run_one()
        executed += 1
        if executed % 50 == 0:
            series.record(
                outage + dbms.wall_clock(), runner.driver.stats.neworder_commits
            )
    series.record(outage + dbms.wall_clock(), runner.driver.stats.neworder_commits)
    return restart, series


def test_fig6_post_restart_throughput(benchmark):
    results = once(benchmark, lambda: {p: _run(p) for p in ("FaCE+GSC", "HDD-only")})

    windows: dict[str, list[tuple[float, float]]] = {}
    for policy, (restart, series) in results.items():
        windows[policy] = series.windowed_tpmc(WINDOW)

    horizon = min(len(windows["FaCE+GSC"]), len(windows["HDD-only"]), 12)
    rows = []
    for i in range(horizon):
        rows.append(
            (
                f"{windows['FaCE+GSC'][i][0]:.0f}s",
                round(windows["FaCE+GSC"][i][1]),
                round(windows["HDD-only"][i][1]),
            )
        )
    print()
    print(
        format_table(
            "Figure 6 - tpmC per 1s window after the crash (t=0)",
            ["window end", "FaCE+GSC", "HDD-only"],
            rows,
        )
    )
    face_restart, _ = results["FaCE+GSC"]
    hdd_restart, _ = results["HDD-only"]
    print(
        f"restart outage: FaCE+GSC {face_restart.total_time:.2f}s, "
        f"HDD-only {hdd_restart.total_time:.2f}s"
    )

    # FaCE resumes sooner: its outage is a fraction of HDD-only's.
    assert face_restart.total_time < 0.6 * hdd_restart.total_time
    # And it processes more transactions in the early windows.
    early = range(min(6, horizon))
    face_early = sum(windows["FaCE+GSC"][i][1] for i in early)
    hdd_early = sum(windows["HDD-only"][i][1] for i in early)
    assert face_early > 1.5 * hdd_early
    # Steady-state throughput after the ramp is also higher under FaCE.
    assert windows["FaCE+GSC"][horizon - 1][1] > windows["HDD-only"][horizon - 1][1]
