"""Table 5: "More DRAM or More Flash" — equal-money scaling.

Paper: starting from the base configuration (200 MB DRAM buffer, no flash
cache), each step adds either 200 MB of DRAM *or* 2 GB of flash (same
dollars at the 10:1 $/GB gap of Section 2.2), five steps::

    (tpmC)        x1    x2    x3    x4    x5
    More DRAM   2061  2353  2501  2705  2843
    More Flash  3681  4310  4830  5161  5570

Shape claims: at every step, spending the money on flash (FaCE+GSC) yields
substantially higher throughput than spending it on DRAM, and both curves
rise monotonically.
"""

from __future__ import annotations

from repro.analysis.tables import format_table
from repro.core.config import CachePolicy, SystemConfig, scaled_reference_config
from repro.storage.profiles import DRAM_TO_FLASH_PRICE_RATIO
from benchmarks.conftest import DB_PAGES, once, steady_cells

STEPS = (1, 2, 3, 4, 5)
#: One increment of DRAM: the base buffer itself (200 MB on 50 GB = 0.4 %).
DRAM_STEP_PAGES = max(16, int(DB_PAGES * 0.004))
#: The same money in flash: 10x the pages.
FLASH_STEP_PAGES = int(DRAM_STEP_PAGES * DRAM_TO_FLASH_PRICE_RATIO)


def _config(buffer_pages: int, cache_pages: int) -> SystemConfig:
    if cache_pages:
        return scaled_reference_config(
            DB_PAGES, policy=CachePolicy.FACE_GSC
        ).with_(buffer_pages=buffer_pages, cache_pages=cache_pages,
                segment_entries=max(64, cache_pages // 16))
    return scaled_reference_config(
        DB_PAGES, cache_fraction=0.01, policy=CachePolicy.NONE
    ).with_(buffer_pages=buffer_pages)


def test_table5_more_dram_vs_more_flash(benchmark):
    def run():
        base_buffer = DRAM_STEP_PAGES
        configs = {}
        for k in STEPS:
            configs[f"dram-x{k}"] = _config(base_buffer + k * DRAM_STEP_PAGES, 0)
            configs[f"flash-x{k}"] = _config(base_buffer, k * FLASH_STEP_PAGES)
        results = steady_cells(configs)
        dram_row = [results[f"dram-x{k}"].tpmc for k in STEPS]
        flash_row = [results[f"flash-x{k}"].tpmc for k in STEPS]
        return dram_row, flash_row

    dram_row, flash_row = once(benchmark, run)

    print()
    print(
        format_table(
            f"Table 5 - equal spend: +{DRAM_STEP_PAGES}p DRAM vs "
            f"+{FLASH_STEP_PAGES}p flash per step (tpmC)",
            ["option", *[f"x{k}" for k in STEPS]],
            [
                ("More DRAM", *[round(v) for v in dram_row]),
                ("More Flash", *[round(v) for v in flash_row]),
            ],
        )
    )

    # Flash wins at every step with a wide margin (paper: 1.8-2x).
    for k, (dram, flash) in enumerate(zip(dram_row, flash_row), start=1):
        assert flash > 1.2 * dram, f"step x{k}: flash {flash:.0f} vs dram {dram:.0f}"
    # Both investments keep paying off across the sweep.
    assert flash_row[-1] > flash_row[0]
    assert dram_row[-1] > dram_row[0]
