"""Ablation: DRAM replacement policy under FaCE.

FaCE's design premise (Section 3) is that the flash cache "simply goes
along with the data page replacement mechanism provided by the DRAM buffer
pool" — it should work regardless of what that mechanism is.  This bench
swaps strict LRU for CLOCK (PostgreSQL's actual sweep) and checks FaCE's
benefit is insensitive to the choice.
"""

from __future__ import annotations

from repro.analysis.tables import format_table
from benchmarks.conftest import config_for, once, steady_cells

CACHE_FRACTION = 0.12
POLICIES = ("lru", "clock")


def test_ablation_dram_replacement_policy(benchmark):
    def run():
        grid = [
            (cache, dram)
            for cache in ("FaCE+GSC", "HDD-only")
            for dram in POLICIES
        ]
        cells = steady_cells({
            f"{cache}/{dram}": config_for(cache, CACHE_FRACTION).with_(
                buffer_policy=dram
            )
            for cache, dram in grid
        })
        return {(cache, dram): cells[f"{cache}/{dram}"] for cache, dram in grid}

    results = once(benchmark, run)

    print()
    print(
        format_table(
            "Ablation - DRAM replacement under FaCE+GSC vs HDD-only",
            ["cache", "DRAM policy", "tpmC", "DRAM hit %", "flash hit %"],
            [
                (
                    cache,
                    dram,
                    round(r.tpmc),
                    round(100 * r.dram_hit_rate, 1),
                    round(100 * r.flash_hit_rate, 1),
                )
                for (cache, dram), r in results.items()
            ],
            width=14,
        )
    )

    for dram in POLICIES:
        face = results[("FaCE+GSC", dram)]
        hdd = results[("HDD-only", dram)]
        # FaCE's advantage holds under either DRAM policy...
        assert face.tpmc > 1.5 * hdd.tpmc
    # ...and is of similar magnitude (within 30%) across policies.
    lru_gain = results[("FaCE+GSC", "lru")].tpmc / results[("HDD-only", "lru")].tpmc
    clock_gain = (
        results[("FaCE+GSC", "clock")].tpmc / results[("HDD-only", "clock")].tpmc
    )
    assert abs(lru_gain - clock_gain) / lru_gain < 0.3
