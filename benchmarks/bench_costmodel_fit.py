"""Validate Section 2.2's premise inside the simulator.

The cost-effectiveness analysis assumes hit rate is linear in
``log(cache size)`` (Tsuei et al.).  This bench fits that model to the
measured Table-3 sweep and checks it actually describes the simulated
system — closing the loop between the analysis and the experiments.
"""

from __future__ import annotations

from repro.analysis.fitting import fit_log_hit_curve
from repro.analysis.tables import format_table
from benchmarks.conftest import (
    DB_PAGES,
    TABLE_FRACTIONS,
    once,
    prefetch_cells,
    sweep_cell,
)


def test_hit_rate_follows_log_linear_law(benchmark):
    def run():
        out = {}
        prefetch_cells(
            (policy, fraction, "mlc")
            for policy in ("FaCE+GSC", "LC")
            for fraction in TABLE_FRACTIONS
        )
        for policy in ("FaCE+GSC", "LC"):
            points = [
                (fraction * DB_PAGES, sweep_cell(policy, fraction).flash_hit_rate)
                for fraction in TABLE_FRACTIONS
            ]
            out[policy] = fit_log_hit_curve(points)
        return out

    fits = once(benchmark, run)

    print()
    print(
        format_table(
            "Section 2.2 premise - hit rate vs log(cache size) fit",
            ["policy", "alpha", "beta", "R^2"],
            [
                (policy, round(fit.alpha, 4), round(fit.beta, 3),
                 round(fit.r_squared, 4))
                for policy, fit in fits.items()
            ],
        )
    )

    for policy, fit in fits.items():
        # The law must describe the sweep well (the paper builds on it).
        assert fit.r_squared > 0.95, f"{policy}: log-linear law fails"
        assert fit.alpha > 0  # bigger cache, more hits
        # Interpolation sanity: the mid-sweep prediction lands close.
        mid_size = TABLE_FRACTIONS[2] * DB_PAGES
        measured_mid = sweep_cell(policy, TABLE_FRACTIONS[2]).flash_hit_rate
        assert abs(fit.predict(mid_size) - measured_mid) < 0.05
