"""Legacy setuptools shim.

All project metadata lives in ``pyproject.toml``.  This file exists so that
``python setup.py develop`` works in offline environments where pip cannot
fetch the ``wheel`` package that PEP 660 editable installs require.
"""

from setuptools import setup

setup()
